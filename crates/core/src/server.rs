//! The streaming multi-edge session layer.
//!
//! The paper's deployment is one Jetson edge and one cloud server driven
//! over a whole dataset at once. Production traffic does not look like
//! that: frames arrive incrementally from many edge devices, and one cloud
//! serves them all. This module is the API for that shape:
//!
//! * [`CloudServer::spawn`] starts a cloud worker thread (big model + device
//!   model + a FIFO scheduler that batches inference across sessions).
//! * [`CloudServer::connect`] opens an [`EdgeSession`]: an edge device with
//!   its own virtual clock, link model, RNG stream and offload policy.
//! * [`EdgeSession::submit`] pushes one frame through the edge pipeline and
//!   returns a [`FrameTicket`]; difficult cases are serialized as real
//!   length-prefixed wire frames and queued to the cloud.
//! * [`EdgeSession::poll`] blocks until a ticket's frame is resolved;
//!   [`EdgeSession::drain`] resolves everything outstanding and snapshots a
//!   [`SessionReport`].
//!
//! All time is *virtual*: latencies come from the device/link models, so a
//! run finishes at compute speed and — as long as sessions are driven from
//! one thread — is fully deterministic under a fixed seed. The legacy batch
//! entry point [`crate::run_system`] is a thin wrapper over one
//! single-session server and reproduces its historical reports exactly.
//!
//! # Degraded networks
//!
//! A session may overlay its link with a [`simnet::LinkTrace`]
//! ([`SessionConfig::link_trace`]) and the deployment may schedule faults
//! ([`CloudConfig::faults`] for cloud stalls, [`SessionConfig::drop_windows`]
//! for per-session blackouts). On a traced link the *edge* drives every
//! transfer against its virtual clock: a failed attempt (outage, drop
//! window, or a loss draw) retransmits with exponential backoff
//! ([`SessionConfig::retry`]), the time lost is accounted in
//! [`LatencyBreakdown::retransmit_s`], and a submission that can no longer
//! meet its deadline — or exhausts its retries — falls back to the edge-only
//! answer without ever reaching the cloud ([`SessionReport::link_fallbacks`]).
//! Policies can adapt: [`PolicyInput::link`] carries the observed link state
//! at each frame's arrival. Static links (`link_trace: None`) take the
//! historical zero-trace fast path and stay bit-identical to the seed
//! implementation (pinned by `tests/api_equivalence.rs`).
//!
//! # Scheduling control plane
//!
//! The cloud side is no longer a hard-coded FIFO loop: batch formation is
//! delegated to an object-safe [`Scheduler`](crate::Scheduler) — the
//! control-plane mirror of the data plane's
//! [`OffloadPolicy`](crate::OffloadPolicy). [`CloudConfig::scheduler`]
//! names one of the shipped schedulers ([`FifoBatcher`](crate::FifoBatcher)
//! stays **bit-identical** to the historical inline loop;
//! [`DeadlineAware`](crate::DeadlineAware) forms batches
//! earliest-deadline-first; [`DifficultyPriority`](crate::DifficultyPriority)
//! serves the hardest cases first, ordered by the score the offload policy
//! stamps on each uploaded frame via
//! [`OffloadPolicy::difficulty`](crate::OffloadPolicy::difficulty)), and
//! [`CloudServer::spawn_with`] accepts any custom boxed implementation.
//!
//! Two more control-plane knobs ride on the same seam:
//!
//! * **Admission control** — [`CloudConfig::queue_limit`] bounds the cloud
//!   queue. Before spending any uplink, a session asks the cloud (a
//!   zero-virtual-cost probe on the control channel); a frame refused
//!   admission is served from the edge-only answer without rendering,
//!   encoding or transmitting anything
//!   ([`SessionReport::admission_fallbacks`]), reusing the fallback
//!   plumbing the degraded-network layer introduced.
//! * **Autoscaling** — [`CloudConfig::autoscale`] grows and shrinks the
//!   *wall-clock* inference pool deterministically from the queue depth at
//!   each batch formation and from [`FaultPlan`] stall windows on the
//!   virtual clock. Scaling never touches virtual time, and batch results
//!   merge in queue order, so reports are bit-identical for any scaling
//!   trajectory ([`CloudStats::peak_workers`] records what the pool did).
//!
//! Sessions observe the control plane: every admission probe and every
//! cloud answer carries the current queue depth, surfaced to policies as
//! [`PolicyInput::cloud_queue`] so adaptive strategies can back off when
//! the cloud is saturated (see `examples/degraded_network.rs` and
//! `examples/cloud_scheduling.rs`).
//!
//! # Fleet-scale engine
//!
//! [`EdgeSession`] is a *facade*: the session's entire state — clock, RNG,
//! policy, pending frames, metrics — lives in a channel-free
//! `EdgeMachine`, and every public method delegates through the
//! `CloudPort` seam (here a `ChannelPort` to the worker thread; both
//! are monomorphized, so this path compiles to exactly the pre-seam
//! code). The cloud worker has the same split: `CloudMachine` is the
//! full worker as an inline state machine, and `cloud_loop` merely
//! drains a channel into it.
//!
//! That seam is what the fleet engine ([`crate::fleet`]) exploits: it
//! drives the *same* machines inline from a central virtual-time event
//! queue — no thread, no channel, ~1 KB of state per session — so one
//! process carries 10⁵–10⁶ concurrent heterogeneous sessions over
//! sharded cloud machines, and still produces per-session reports
//! bit-identical to a thread-per-session deployment (pinned by
//! `tests/fleet.rs`).
//!
//! # Distributed deployment
//!
//! Everything above runs edge and cloud in one process, wired by channels.
//! The [`crate::transport`] module lifts the *same* session protocol onto a
//! real byte stream: [`transport::serve`](crate::transport::serve) accepts
//! connections on any [`Listener`](crate::transport::Listener) and runs one
//! cloud worker per registered session, while
//! [`RemoteCloud`](crate::transport::RemoteCloud) dials the cloud (with a
//! versioned handshake and reconnect-with-backoff) and hands back an
//! ordinary [`EdgeSession`] via
//! [`RemoteCloud::attach`](crate::transport::RemoteCloud::attach) — the
//! submit/poll/drain surface is identical, and because every session
//! already lives on its own virtual clock, a fleet of real OS processes
//! over loopback TCP produces **bit-identical** [`SessionReport`]s to the
//! in-process path (pinned by `tests/transport.rs`). The `cloud-node` and
//! `edge-node` binaries in the umbrella crate package this as runnable
//! processes, and `smallbig-orchestrate` launches and scrapes a whole
//! fleet (see `smallbig::distributed`).
//!
//! # Model-update loop
//!
//! With [`CloudConfig::updates`] set, the cloud treats every served frame
//! as a *pseudo-label*: the uploading session stamps the small model's
//! predicted count on the wire header, the big model's answer provides
//! the other half, and "big saw more than small" is exactly the paper's
//! difficulty label — no ground truth needed. Pseudo-labels accumulate in
//! served order; when a served frame's virtual arrival crosses an epoch
//! boundary ([`crate::UpdateConfig::epoch_s`]) with enough examples, the
//! cloud re-runs the paper's count/area grid search
//! ([`crate::calibrate_count_area`]) and packages the result as a
//! versioned [`crate::CalibrationUpdate`] — thresholds, a sorted
//! difficulty-score vector that re-seeds [`crate::QuantileStream`]
//! history, and the rollout policy (holdout + divergence bound).
//!
//! Rollout piggybacks the answer path: the artifact rides the session's
//! response channel under the reserved ticket [`crate::UPDATE_TICKET`],
//! pushed immediately before the next answer to any session still on an
//! older version — so a session that was offline (or simply quiet) through
//! several epochs receives the *current* artifact on its next answer, and
//! lost updates need no separate retry machinery. Edges stash the frame
//! on receipt and apply it **atomically between frames**
//! ([`crate::OffloadPolicy::apply_calibration`]); each apply opens a
//! probation window, and if the upload fraction over that window diverges
//! from the pre-update holdout beyond the artifact's bound, the edge
//! restores its pre-apply snapshot and reverts to the last good version
//! ([`SessionReport::rollbacks`]). Everything is deterministic: epochs
//! are pure functions of virtual time, update frames cost zero virtual
//! time and zero RNG draws, and `updates: None` (the default) is
//! bit-identical to a build without the subsystem (pinned by
//! `tests/model_update.rs` and the golden suites).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use datagen::{Dataset, DatasetProfile, SplitId};
//! use modelzoo::{Detector, ModelKind, SimDetector};
//! use smallbig_core::{CloudConfig, CloudServer, DifficultCaseDiscriminator, SessionConfig};
//!
//! let data = Dataset::generate("demo", &DatasetProfile::helmet(), 12, 3);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
//! let big: Arc<dyn Detector + Send + Sync> =
//!     Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
//!
//! let mut cloud = CloudServer::spawn(CloudConfig::default(), big);
//! let mut session = cloud.connect(
//!     SessionConfig { frame_size: (96, 96), ..SessionConfig::new(2) },
//!     &small,
//!     Box::new(DifficultCaseDiscriminator::default()),
//! );
//! for scene in data.iter() {
//!     let ticket = session.submit(scene);
//!     let result = session.poll(ticket).expect("frame resolves");
//!     assert!(result.completed_at >= 0.0);
//! }
//! let report = session.drain();
//! assert_eq!(report.frames, 12);
//! drop(session);
//! let stats = cloud.shutdown();
//! assert_eq!(stats.served, report.uploads);
//! ```

use crate::features::PREDICTION_THRESHOLD;
use crate::scheduler::{
    AutoscaleConfig, Autoscaler, QueuedFrame, Scheduler, SchedulerConfig, SchedulerSlot,
};
use crate::strategies::{Decision, OffloadPolicy, PolicyInput};
use crate::update::{UpdateClient, UpdatePublisher};
use crate::wire::{decode_frame, encode_frame};
use crossbeam::channel::{self, Receiver, Sender};
use datagen::Scene;
use detcore::{
    count_detected_with, ApProtocol, CountScratch, CountingConfig, DatasetCounter, GroundTruth,
    ImageDetections, MapEvaluator,
};
use imaging::{encoded_size_bytes, render, result_size_bytes};
use modelzoo::Detector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use simnet::{
    DeviceModel, FaultPlan, LatencyBreakdown, LatencyStats, LinkAttempt, LinkModel, LinkTrace,
    RetryConfig, TimeWindow,
};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// How much edge compute runs (and is charged) before the offload decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgePipeline {
    /// Small model plus discriminator cost — the paper's deployment.
    Full,
    /// Small model cost only (edge-only baselines have no discriminator).
    ModelOnly,
    /// No edge compute charged; the small model still runs *untimed* so a
    /// local fallback result exists (cloud-only baselines).
    Bypass,
}

/// Configuration of the cloud side of a deployment.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Cloud device model (default: RTX3060 server).
    pub device: DeviceModel,
    /// Seed for the cloud's uplink-jitter RNG stream.
    pub seed: u64,
    /// Maximum frames fused into one big-model batch. `1` reproduces the
    /// paper's one-at-a-time serving; larger values let the FIFO scheduler
    /// batch requests that queue up across sessions.
    pub max_batch: usize,
    /// Big-model inference threads. `1` (the default) runs inference inline
    /// on the scheduler thread; larger values fan each batch's frames out
    /// over a pool of worker threads. Detectors are deterministic and
    /// results are merged back in queue order before any response is sent,
    /// so reports are **bit-identical for every worker count** — the pool
    /// changes wall-clock speed only, never virtual-time semantics
    /// (guarded by the `worker_pool_reports_bit_identical` test).
    pub workers: usize,
    /// Scheduled faults. The cloud side consumes the *stall* windows: a
    /// batch that would start inside one is deferred to the window's end.
    /// Sessions consume their drop windows via
    /// [`SessionConfig::drop_windows`] (see [`FaultPlan::drops_for`]). An
    /// empty plan (the default) changes nothing.
    pub faults: FaultPlan,
    /// Which [`Scheduler`] forms big-model batches. The default
    /// ([`SchedulerConfig::Fifo`]) is bit-identical to the historical
    /// inline loop; see the module docs' *Scheduling control plane*
    /// section, or pass a custom implementation to
    /// [`CloudServer::spawn_with`].
    pub scheduler: SchedulerConfig,
    /// Admission control: the deepest the cloud queue may grow. With
    /// `Some(n)`, a session probes the cloud before spending any uplink
    /// and serves its frame edge-only when `n` or more frames' worth of
    /// work already waits ([`SessionReport::admission_fallbacks`]). The
    /// measured depth is the frames not yet in a batch *plus* the server's
    /// virtual backlog relative to the probing session, in single-frame
    /// inference units — so the limit binds on real congestion even though
    /// an eager scheduler keeps the unformed batch below `max_batch`. A
    /// strictly poll-per-frame edge never builds a backlog and is never
    /// refused. `None` (the default) admits everything and changes
    /// nothing — not even RNG draws.
    pub queue_limit: Option<usize>,
    /// Deterministic autoscaling of the wall-clock inference pool within
    /// `[min_workers, workers]`. `None` (the default) keeps the fixed
    /// pool. Reports are bit-identical either way (scaling never touches
    /// virtual time); [`CloudStats::peak_workers`] records the trajectory.
    pub autoscale: Option<AutoscaleConfig>,
    /// The model-update loop: with `Some`, the cloud accumulates every
    /// served frame as a pseudo-label, refits discriminator thresholds on
    /// the configured virtual-time epochs, and pushes versioned
    /// [`crate::CalibrationUpdate`] artifacts to sessions over the answer
    /// path (see the module docs' *Model-update loop* section). `None`
    /// (the default) disables the loop entirely and changes nothing — not
    /// even RNG draws — so update-free runs stay bit-identical to the
    /// seed.
    pub updates: Option<crate::UpdateConfig>,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            device: DeviceModel::gpu_server(),
            seed: 0x5417,
            max_batch: 1,
            workers: 1,
            faults: FaultPlan::new(),
            scheduler: SchedulerConfig::Fifo,
            queue_limit: None,
            autoscale: None,
            updates: None,
        }
    }
}

/// Configuration of one edge session.
///
/// Defaults mirror the paper's testbed (Jetson Nano over the shared WLAN,
/// 300×300 frames); construct with [`SessionConfig::new`] to set the class
/// count of the workload's taxonomy.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Edge device model (default: Jetson Nano).
    pub edge: DeviceModel,
    /// This session's uplink/downlink model (default: the paper's WLAN).
    pub link: LinkModel,
    /// Resolution at which frames are rendered/encoded for upload sizing.
    pub frame_size: (usize, usize),
    /// Fixed discriminator execution time (threshold checks are trivial).
    pub discriminator_s: f64,
    /// Seed for this session's downlink-jitter RNG stream.
    pub seed: u64,
    /// AP protocol for the session report.
    pub ap_protocol: ApProtocol,
    /// Counting thresholds for the detected-objects metric.
    pub counting: CountingConfig,
    /// Optional per-image latency deadline (see [`crate::RuntimeConfig`]).
    pub deadline_s: Option<f64>,
    /// How much edge compute runs before the decision.
    pub pipeline: EdgePipeline,
    /// Number of classes in the workload's taxonomy.
    pub num_classes: usize,
    /// Dynamic schedule overlaying [`link`](Self::link). `None` (the
    /// default) is the static fast path — bit-identical to the historical
    /// behaviour. `Some` moves transfer timing to the edge: attempts are
    /// driven against the session's virtual clock and retransmit with
    /// backoff when the trace loses them.
    pub link_trace: Option<LinkTrace>,
    /// Scheduled blackouts for *this* session (usually
    /// [`FaultPlan::drops_for`] of the deployment's plan): any traced
    /// attempt inside a window is lost deterministically. Ignored on a
    /// static link.
    pub drop_windows: Vec<TimeWindow>,
    /// Backoff schedule for traced retransmissions.
    pub retry: RetryConfig,
}

impl SessionConfig {
    /// Paper-testbed defaults for a `num_classes`-way workload.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        SessionConfig {
            edge: DeviceModel::jetson_nano(),
            link: LinkModel::wlan(),
            frame_size: (300, 300),
            discriminator_s: 0.0004,
            seed: 0x5417,
            ap_protocol: ApProtocol::Voc07ElevenPoint,
            counting: CountingConfig::default(),
            deadline_s: None,
            pipeline: EdgePipeline::Full,
            num_classes,
            link_trace: None,
            drop_windows: Vec::new(),
            retry: RetryConfig::default(),
        }
    }
}

/// Handle to one submitted frame, returned by [`EdgeSession::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameTicket(u64);

/// The resolved outcome of one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResult {
    /// The frame's ticket.
    pub ticket: FrameTicket,
    /// Whether the frame was uploaded.
    pub decision: Decision,
    /// The detections served to the application (local or cloud).
    pub dets: ImageDetections,
    /// Where the frame's latency went.
    pub breakdown: LatencyBreakdown,
    /// Virtual time at which the result became available on the edge.
    pub completed_at: f64,
    /// Whether the cloud answer missed the deadline (local fallback served).
    pub missed_deadline: bool,
    /// Whether the traced link gave up (outage/drops exhausted the retries)
    /// and the local answer was served without a completed round trip.
    pub link_fallback: bool,
    /// Whether the cloud refused the frame at admission
    /// ([`CloudConfig::queue_limit`]) and the local answer was served
    /// without any uplink being spent.
    pub admission_fallback: bool,
}

/// Everything one session measured (the per-edge analogue of
/// [`crate::RuntimeReport`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SessionReport {
    /// Session id assigned by the cloud server.
    pub session: u64,
    /// Frames submitted.
    pub frames: usize,
    /// Frames uploaded to the cloud.
    pub uploads: usize,
    /// End-to-end mAP (%) of the results served on the edge.
    pub map_pct: f64,
    /// Objects detected across the session.
    pub detected: usize,
    /// Ground-truth objects seen.
    pub total_gt: usize,
    /// The session's virtual clock after its last resolved frame.
    pub total_time_s: f64,
    /// Fraction of frames uploaded.
    pub upload_ratio: f64,
    /// Per-component latency totals.
    pub latency: LatencyStats,
    /// Total bytes shipped edge→cloud.
    pub uplink_bytes: u64,
    /// Uploads whose cloud answer missed the deadline.
    pub deadline_misses: usize,
    /// Frames the policy routed to the cloud but the traced link could not
    /// deliver (outage/drop retries exhausted, or the deadline made even
    /// the uplink hopeless): the edge served its local answer instead.
    /// Always zero on a static link.
    pub link_fallbacks: usize,
    /// Frames the policy routed to the cloud but the cloud refused at
    /// admission ([`CloudConfig::queue_limit`]): the edge served its local
    /// answer and spent no uplink. Always zero without a queue limit.
    pub admission_fallbacks: usize,
    /// Rollout version of the calibration in force when the session
    /// drained (`0` = the factory calibration it booted with; see the
    /// module docs' *Model-update loop* section). Always zero with
    /// [`CloudConfig::updates`] disabled.
    pub calibration_version: u64,
    /// Calibration updates the session applied over its lifetime.
    pub updates_applied: u64,
    /// Updates rolled back after a divergence trip.
    pub rollbacks: u64,
}

/// What the cloud worker measured over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CloudStats {
    /// Frames served by the big model.
    pub served: usize,
    /// Big-model batches executed.
    pub batches: usize,
    /// Total virtual time the server spent busy.
    pub busy_s: f64,
    /// Sessions that registered over the server's lifetime.
    pub sessions: usize,
    /// Frames refused at admission ([`CloudConfig::queue_limit`]).
    pub admission_rejects: usize,
    /// Highest number of active inference workers the autoscaler engaged
    /// (`0` when autoscaling is disabled — the pool then stays at
    /// [`CloudConfig::workers`]).
    pub peak_workers: usize,
    /// Autoscaler resizing events over the server's lifetime (`0` when
    /// autoscaling is disabled).
    pub scale_changes: usize,
    /// Calibration refits published by the update loop (`0` when
    /// [`CloudConfig::updates`] is disabled).
    pub updates_published: u64,
    /// Current rollout version of the published calibration (`0` before
    /// the first refit or with updates disabled).
    pub calibration_version: u64,
}

/// The wire message for one uploaded frame (edge → cloud).
///
/// The scene itself is *not* serialized: it travels alongside the header as
/// an [`Arc<Scene>`], so a submit shares the scene instead of cloning and
/// JSON-round-tripping it. Link timing is driven by `frame_bytes` (the
/// rendered camera frame), which is unaffected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SubmitRequest {
    pub(crate) session: u64,
    pub(crate) ticket: u64,
    /// Size of the encoded camera frame being uploaded (drives the link).
    pub(crate) frame_bytes: usize,
    /// Virtual send timestamp at the edge.
    pub(crate) sent_at: f64,
    /// Uplink transfer time, when the edge drove the transfer itself
    /// (traced links). `None` on static links: the cloud draws the uplink
    /// from its own RNG stream in arrival order, exactly as the seed
    /// implementation did.
    pub(crate) uplink_s: Option<f64>,
    /// Difficulty score the offload policy assigned to the frame
    /// ([`OffloadPolicy::difficulty`]; `0` for unscored frames). Priority
    /// schedulers order by it; the header bytes don't drive the link
    /// (`frame_bytes` does), so carrying it is timing-free.
    pub(crate) difficulty: f64,
    /// Absolute virtual deadline of the frame (`entered_at + deadline_s`)
    /// when the session has one; deadline-aware schedulers order by it.
    pub(crate) deadline_at: Option<f64>,
    /// Objects the edge's small model predicted for this frame (score ≥
    /// 0.5): the edge half of the pseudo-label the update loop derives
    /// from the big model's answer. Header bytes don't drive the link, so
    /// carrying it is timing-free.
    pub(crate) small_count: usize,
}

/// The wire message for one answer (cloud → edge).
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct SubmitResponse {
    pub(crate) ticket: u64,
    dets: ImageDetections,
    /// Virtual timestamp at which the reply left the server.
    sent_at: f64,
    /// Server-side inference time attributed to this frame.
    infer_s: f64,
    /// Uplink transfer time the request experienced.
    uplink_s: f64,
    /// Cloud queue depth when this answer's batch formed (the batch itself
    /// plus everything still waiting) — the congestion this frame actually
    /// experienced, surfaced to policies as [`PolicyInput::cloud_queue`].
    queue_depth: usize,
}

/// Control-plane reply to an admission probe (cloud → edge, in-process —
/// probes are zero-virtual-cost and never serialized).
pub(crate) struct ProbeReply {
    pub(crate) admitted: bool,
    pub(crate) queue_depth: usize,
}

/// Where a session's answers go: the in-process channel its
/// [`EdgeSession`] polls, or a transport sink that writes the
/// already-encoded frame straight onto the connection *from the worker
/// thread* — no forwarder-thread hop, no extra context switch per answer.
pub(crate) enum AnswerTx {
    Chan(Sender<(u64, bytes::Bytes)>),
    Sink(Box<dyn FnMut(u64, bytes::Bytes) -> bool + Send>),
}

impl AnswerTx {
    pub(crate) fn send(&mut self, ticket: u64, frame: bytes::Bytes) -> bool {
        match self {
            AnswerTx::Chan(tx) => tx.send((ticket, frame)).is_ok(),
            AnswerTx::Sink(f) => f(ticket, frame),
        }
    }
}

/// Probe-reply counterpart of [`AnswerTx`].
pub(crate) enum ProbeTx {
    Chan(Sender<ProbeReply>),
    Sink(Box<dyn FnMut(ProbeReply) -> bool + Send>),
}

impl ProbeTx {
    pub(crate) fn send(&mut self, reply: ProbeReply) -> bool {
        match self {
            ProbeTx::Chan(tx) => tx.send(reply).is_ok(),
            ProbeTx::Sink(f) => f(reply),
        }
    }
}

/// Control-plane messages into the cloud worker. Frame headers travel as
/// the typed [`SubmitRequest`] (each consumer encodes for its own wire if
/// it has one); the scene rides along as a shared [`Arc`] so submitting
/// never deep-copies it. Answers carry their ticket next to the encoded
/// frame so transports can route them without re-parsing the payload.
pub(crate) enum ToCloud {
    Register {
        session: u64,
        link: LinkModel,
        resp_tx: AnswerTx,
        probe_tx: ProbeTx,
    },
    Frame(SubmitRequest, Arc<Scene>),
    /// Ask whether the cloud would admit one more frame right now
    /// ([`CloudConfig::queue_limit`]); answered on the probing session's
    /// probe channel. `now` is the probing session's virtual clock, so the
    /// cloud can count its own virtual backlog — not just the unformed
    /// batch — against the limit.
    Probe {
        session: u64,
        now: f64,
    },
    Flush {
        session: u64,
    },
    Deregister {
        session: u64,
    },
    Shutdown,
}

/// Handles to the big-model inference pool (present when
/// [`CloudConfig::workers`] `> 1`).
///
/// Workers catch panics from `detect` and ship the payload back, so a
/// panicking user [`Detector`] unwinds the scheduler (and then the whole
/// server thread) instead of deadlocking a counted receive loop.
pub(crate) struct DetectPool {
    job_tx: Sender<(usize, Arc<Scene>)>,
    done_rx: Receiver<(usize, std::thread::Result<ImageDetections>)>,
}

/// Runs big-model inference for one batch, returning results *in queue
/// order* regardless of which worker finished first. Detectors are
/// deterministic, so the merged output — and therefore every response and
/// report downstream — is identical for any worker count.
///
/// `active_workers` bounds how many jobs are in flight at once (the
/// autoscaler's wall-clock knob; `usize::MAX` keeps the historical
/// send-everything dispatch). The indexed merge makes the bound invisible
/// to results.
fn detect_batch(
    queue: &[QueuedFrame],
    big: &(dyn Detector + Sync),
    pool: Option<&DetectPool>,
    active_workers: usize,
    out: &mut Vec<Option<ImageDetections>>,
) {
    out.clear();
    out.resize(queue.len(), None);
    match pool {
        None => {
            for (i, q) in queue.iter().enumerate() {
                out[i] = Some(big.detect(&q.scene));
            }
        }
        Some(pool) => {
            let n = queue.len();
            let window = active_workers.max(1).min(n);
            let mut next = window;
            for (i, q) in queue.iter().take(window).enumerate() {
                pool.job_tx
                    .send((i, Arc::clone(&q.scene)))
                    .expect("inference workers outlive the scheduler");
            }
            for _ in 0..n {
                let (i, result) = pool
                    .done_rx
                    .recv()
                    .expect("inference workers outlive the scheduler");
                match result {
                    Ok(dets) => out[i] = Some(dets),
                    // Re-raise the worker's panic here so the server thread
                    // fails loudly instead of waiting for a result that
                    // will never arrive.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
                if next < n {
                    pool.job_tx
                        .send((next, Arc::clone(&queue[next].scene)))
                        .expect("inference workers outlive the scheduler");
                    next += 1;
                }
            }
        }
    }
}

/// Per-session handles the cloud worker keeps.
struct SessionHandles {
    link: LinkModel,
    resp_tx: AnswerTx,
    probe_tx: ProbeTx,
}

/// The cloud worker: FIFO over the control channel, delegating batch
/// formation to the configured [`Scheduler`].
///
/// Determinism: everything the worker does is a pure function of the
/// message order on `rx` (uplink jitter is drawn per frame in arrival
/// order, and schedulers never draw randomness). Drive all sessions from
/// one thread and the whole run is reproducible; the wall-clock speed of
/// this thread never matters. With `workers > 1` only the *detect* calls
/// fan out (see [`detect_batch`]); scheduling, timing and response order
/// stay on this thread.
pub(crate) fn cloud_loop(
    rx: &Receiver<ToCloud>,
    big: &(dyn Detector + Sync),
    config: &CloudConfig,
    sched: SchedulerSlot,
) -> CloudStats {
    assert!(config.workers >= 1, "workers must be at least 1");
    if config.workers == 1 {
        return cloud_scheduler(rx, big, config, sched, None);
    }
    std::thread::scope(|scope| {
        let (job_tx, job_rx) = channel::unbounded::<(usize, Arc<Scene>)>();
        let (done_tx, done_rx) =
            channel::unbounded::<(usize, std::thread::Result<ImageDetections>)>();
        for _ in 0..config.workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok((i, scene)) = job_rx.recv() {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        big.detect(&scene)
                    }));
                    let failed = result.is_err();
                    if done_tx.send((i, result)).is_err() || failed {
                        break;
                    }
                }
            });
        }
        drop(job_rx);
        drop(done_tx);
        let pool = DetectPool { job_tx, done_rx };
        // `pool` (and its job sender) drops when this closure returns,
        // disconnecting the workers so the scope can join them.
        cloud_scheduler(rx, big, config, sched, Some(&pool))
    })
}

/// The control-plane half of [`cloud_loop`]: admission, batch formation
/// via the [`Scheduler`], autoscaling, and timing. Inference goes through
/// [`detect_batch`] (inline or pooled).
struct CloudWorker<'a> {
    big: &'a (dyn Detector + Sync),
    config: &'a CloudConfig,
    pool: Option<&'a DetectPool>,
    sched: SchedulerSlot,
    sessions: HashMap<u64, SessionHandles>,
    server_free_at: f64,
    next_seq: u64,
    batch: Vec<QueuedFrame>,
    dets_scratch: Vec<Option<ImageDetections>>,
    autoscaler: Option<Autoscaler>,
    stats: CloudStats,
    /// The model-update loop's pseudo-label accumulator (`None` with
    /// [`CloudConfig::updates`] disabled — the bit-identical default).
    updates: Option<UpdatePublisher>,
    /// Rollout version last pushed to each session; a session behind the
    /// current version receives the artifact right before its next answer
    /// (which is also how a session that missed epochs catches up).
    pushed: HashMap<u64, u64>,
}

impl CloudWorker<'_> {
    /// Forms and serves one batch (a no-op on an empty queue). Returns the
    /// number of frames served.
    fn process_one_batch(&mut self) -> usize {
        self.sched
            .take_batch(self.config.max_batch, &mut self.batch);
        if self.batch.is_empty() {
            return 0;
        }
        let n = self.batch.len();
        let latest_arrival = self
            .batch
            .iter()
            .map(|q| q.arrival)
            .fold(f64::MIN, f64::max);
        // A scheduled stall defers the batch to the window's end; an empty
        // fault plan leaves the start untouched (the bit-identical path).
        let formed_at = self.server_free_at.max(latest_arrival);
        let start = self.config.faults.next_available(formed_at);
        // Autoscaling observes virtual-time state only (queue depth at
        // formation, stall windows) and feeds the wall-clock dispatch
        // width — results merge in queue order, so any trajectory yields
        // bit-identical reports.
        let active_workers = match &mut self.autoscaler {
            None => usize::MAX,
            Some(a) => a.observe(
                n + self.sched.len(),
                self.config.faults.is_stalled(formed_at),
            ),
        };
        let batch_s = self.config.device.batch_inference_time(self.big.flops(), n);
        self.server_free_at = start + batch_s;
        self.stats.batches += 1;
        self.stats.busy_s += batch_s;
        let per_frame_infer = batch_s / n as f64;
        detect_batch(
            &self.batch,
            self.big,
            self.pool,
            active_workers,
            &mut self.dets_scratch,
        );
        // Depth *at formation*: what this batch's frames actually queued
        // behind (a post-batch depth would read 0 after every flush and
        // tell adaptive policies nothing).
        let queue_depth = n + self.sched.len();
        for (q, dets) in self.batch.drain(..).zip(self.dets_scratch.iter_mut()) {
            let dets = dets.take().expect("detect_batch fills every slot");
            self.stats.served += 1;
            if let Some(publisher) = &mut self.updates {
                // The big model's answer against the edge's reported small
                // count is exactly the paper's difficulty label — a free
                // pseudo-label per served frame.
                let n_big = dets.count_above(crate::PREDICTION_THRESHOLD);
                let example = crate::LabeledExample {
                    scene_id: q.scene.id,
                    true_count: q.scene.num_objects(),
                    true_min_area: q.scene.min_area_ratio(),
                    features: crate::SemanticFeatures::extract(&dets, 0.2),
                    label: if n_big > q.req.small_count {
                        crate::CaseKind::Difficult
                    } else {
                        crate::CaseKind::Easy
                    },
                };
                publisher.observe(example, q.req.difficulty, q.arrival);
                self.stats.updates_published = publisher.published;
                self.stats.calibration_version = publisher.version();
            }
            let resp = SubmitResponse {
                ticket: q.req.ticket,
                dets,
                sent_at: self.server_free_at,
                infer_s: per_frame_infer,
                uplink_s: q.uplink_s,
                queue_depth,
            };
            if let Some(handles) = self.sessions.get_mut(&q.req.session) {
                // A session behind the current calibration gets the
                // artifact pushed right before its answer (same virtual
                // instant, zero extra draws).
                if let Some(update) = self.updates.as_ref().and_then(|p| p.current()) {
                    let pushed = self.pushed.entry(q.req.session).or_insert(0);
                    if *pushed < update.version {
                        *pushed = update.version;
                        let _ = handles
                            .resp_tx
                            .send(crate::UPDATE_TICKET, encode_frame(update));
                    }
                }
                // A session that hung up just loses its reply. The ticket
                // rides beside the encoded frame so transports can route
                // the answer without parsing it.
                let _ = handles.resp_tx.send(resp.ticket, encode_frame(&resp));
            }
        }
        n
    }

    /// Dispatches as long as the scheduler reports a batch is due. The
    /// progress guard means a scheduler that says "ready" but yields no
    /// frames stops the round instead of spinning the worker.
    fn dispatch_ready(&mut self) {
        while self.sched.ready(self.config.max_batch) && self.process_one_batch() > 0 {}
    }

    /// Serves everything queued (flush/deregister/shutdown), one batch at
    /// a time, in the scheduler's service order.
    fn drain_all(&mut self) {
        while !self.sched.is_empty() && self.process_one_batch() > 0 {}
    }
}

fn cloud_scheduler(
    rx: &Receiver<ToCloud>,
    big: &(dyn Detector + Sync),
    config: &CloudConfig,
    sched: SchedulerSlot,
    pool: Option<&DetectPool>,
) -> CloudStats {
    let mut m = CloudMachine::new(big, config, sched, pool);
    while let Ok(msg) = rx.recv() {
        if !m.handle(msg) {
            break;
        }
    }
    m.finish()
}

/// One cloud worker as an inline state machine: feed it [`ToCloud`]
/// messages in arrival order and it behaves exactly like [`cloud_loop`]
/// draining a channel — same virtual clocks, same RNG stream, same
/// responses, bit for bit. The transport layer runs one machine per
/// session directly on a connection's reader thread (no worker thread, no
/// queue, no context switch per frame); [`cloud_scheduler`] wraps one in
/// a channel loop for the in-process path.
pub(crate) struct CloudMachine<'a> {
    w: CloudWorker<'a>,
    rng: StdRng,
}

impl<'a> CloudMachine<'a> {
    pub(crate) fn new(
        big: &'a (dyn Detector + Sync),
        config: &'a CloudConfig,
        sched: SchedulerSlot,
        pool: Option<&'a DetectPool>,
    ) -> CloudMachine<'a> {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        CloudMachine {
            w: CloudWorker {
                big,
                config,
                pool,
                sched,
                sessions: HashMap::new(),
                server_free_at: 0.0,
                next_seq: 0,
                batch: Vec::new(),
                dets_scratch: Vec::new(),
                autoscaler: config
                    .autoscale
                    .map(|cfg| Autoscaler::new(cfg, config.workers)),
                stats: CloudStats {
                    served: 0,
                    batches: 0,
                    busy_s: 0.0,
                    sessions: 0,
                    admission_rejects: 0,
                    peak_workers: 0,
                    scale_changes: 0,
                    updates_published: 0,
                    calibration_version: 0,
                },
                updates: config.updates.map(UpdatePublisher::new),
                pushed: HashMap::new(),
            },
            rng: StdRng::seed_from_u64(config.seed ^ 0xc10d),
        }
    }

    /// Processes one message; returns `false` once [`ToCloud::Shutdown`]
    /// is seen (call [`CloudMachine::finish`] after).
    pub(crate) fn handle(&mut self, msg: ToCloud) -> bool {
        let w = &mut self.w;
        match msg {
            ToCloud::Register {
                session,
                link,
                resp_tx,
                probe_tx,
            } => {
                w.stats.sessions += 1;
                w.sessions.insert(
                    session,
                    SessionHandles {
                        link,
                        resp_tx,
                        probe_tx,
                    },
                );
            }
            ToCloud::Frame(req, scene) => {
                let link = &w
                    .sessions
                    .get(&req.session)
                    .expect("frames only arrive from registered sessions")
                    .link;
                // Traced sessions time their own uplink on the edge; static
                // sessions keep the historical cloud-side draw (and only
                // they consume this RNG stream, so mixing session kinds
                // never perturbs a static session's jitter).
                let uplink_s = req
                    .uplink_s
                    .unwrap_or_else(|| link.transfer_time(req.frame_bytes, &mut self.rng));
                let arrival = req.sent_at + uplink_s;
                let seq = w.next_seq;
                w.next_seq += 1;
                w.sched.push(QueuedFrame {
                    req,
                    scene,
                    uplink_s,
                    arrival,
                    seq,
                });
                w.dispatch_ready();
            }
            ToCloud::Probe { session, now } => {
                // Effective depth = frames not yet in a batch, plus the
                // server's virtual backlog relative to the probing session
                // expressed in single-frame inference units. Without the
                // backlog term an eagerly-dispatching scheduler (FIFO
                // drains at `max_batch`) would cap the observable depth at
                // `max_batch - 1` and any larger limit could never bind,
                // even with the server minutes behind in virtual time.
                let infer_s = w.config.device.inference_time(w.big.flops());
                let backlog = if infer_s > 0.0 {
                    ((w.server_free_at - now).max(0.0) / infer_s) as usize
                } else {
                    0
                };
                let queue_depth = w.sched.len() + backlog;
                let admitted = w.config.queue_limit.is_none_or(|n| queue_depth < n);
                if !admitted {
                    w.stats.admission_rejects += 1;
                }
                if let Some(handles) = w.sessions.get_mut(&session) {
                    // A session that hung up just loses its reply.
                    let _ = handles.probe_tx.send(ProbeReply {
                        admitted,
                        queue_depth,
                    });
                }
            }
            // The session id exists for the transport layer to route
            // flushes on multiplexed connections; a worker owning one
            // queue drains everything regardless of which session asked.
            ToCloud::Flush { session: _ } => {
                w.drain_all();
            }
            ToCloud::Deregister { session } => {
                // Resolve anything queued (possibly other sessions' frames —
                // cheaper than per-session bookkeeping, and deterministic).
                w.drain_all();
                w.sessions.remove(&session);
            }
            ToCloud::Shutdown => return false,
        }
        true
    }

    /// Drains everything still queued and returns the worker's stats.
    pub(crate) fn finish(mut self) -> CloudStats {
        self.w.drain_all();
        if let Some(a) = &self.w.autoscaler {
            self.w.stats.peak_workers = a.peak;
            self.w.stats.scale_changes = a.changes;
        }
        self.w.stats
    }
}

/// Handle to a running cloud worker accepting any number of edge sessions.
pub struct CloudServer {
    tx: Sender<ToCloud>,
    handle: JoinHandle<CloudStats>,
    next_session: u64,
    /// Whether sessions must probe for admission before uploading
    /// ([`CloudConfig::queue_limit`]).
    admission: bool,
}

impl CloudServer {
    /// Spawns the cloud worker thread with the scheduler named by
    /// [`CloudConfig::scheduler`]. The default FIFO runs on the
    /// monomorphized fast path (no virtual dispatch per frame).
    pub fn spawn(config: CloudConfig, big: Arc<dyn Detector + Send + Sync>) -> CloudServer {
        let sched = SchedulerSlot::from_config(&config.scheduler);
        CloudServer::spawn_slot(config, big, sched)
    }

    /// Spawns the cloud worker thread with a custom [`Scheduler`] — the
    /// control-plane extension point ([`CloudConfig::scheduler`] is
    /// ignored in favour of `scheduler`).
    pub fn spawn_with(
        config: CloudConfig,
        big: Arc<dyn Detector + Send + Sync>,
        scheduler: Box<dyn Scheduler>,
    ) -> CloudServer {
        CloudServer::spawn_slot(config, big, SchedulerSlot::Custom(scheduler))
    }

    fn spawn_slot(
        config: CloudConfig,
        big: Arc<dyn Detector + Send + Sync>,
        scheduler: SchedulerSlot,
    ) -> CloudServer {
        // Validate here, on the caller's thread: a bad autoscale config
        // must fail at spawn, not kill the worker at its first batch.
        if let Some(autoscale) = &config.autoscale {
            autoscale.assert_valid();
        }
        if let Some(updates) = &config.updates {
            updates.assert_valid();
        }
        let admission = config.queue_limit.is_some();
        let (tx, rx) = channel::unbounded();
        let handle = std::thread::spawn(move || cloud_loop(&rx, &*big, &config, scheduler));
        CloudServer {
            tx,
            handle,
            next_session: 0,
            admission,
        }
    }

    /// Opens a new edge session against this cloud.
    ///
    /// `small` is the session's edge model and `policy` its offload
    /// strategy; both may borrow (sessions just have to be dropped before
    /// [`CloudServer::shutdown`]).
    ///
    /// Note: [`Policy`](crate::Policy)'s quantile baselines are batch-only
    /// and panic if boxed directly as a streaming policy — pass
    /// [`Policy::into_stream()`](crate::Policy::into_stream) instead, which
    /// converts them to their online-quantile form.
    pub fn connect<'a>(
        &mut self,
        config: SessionConfig,
        small: &'a (dyn Detector + Sync),
        policy: Box<dyn OffloadPolicy + 'a>,
    ) -> EdgeSession<'a> {
        let id = self.next_session;
        self.next_session += 1;
        self.connect_as(id, config, small, policy)
    }

    /// Like [`CloudServer::connect`] but with an explicit session id — the
    /// channel-path twin of
    /// [`RemoteCloud::attach_as`](crate::transport::RemoteCloud::attach_as),
    /// so a reference run can mirror the ids a transport fleet uses. Does
    /// not advance the auto-assigned counter; ids must be unique per
    /// server.
    pub fn connect_as<'a>(
        &mut self,
        session: u64,
        config: SessionConfig,
        small: &'a (dyn Detector + Sync),
        policy: Box<dyn OffloadPolicy + 'a>,
    ) -> EdgeSession<'a> {
        EdgeSession::attach(
            session,
            config,
            small,
            policy,
            self.tx.clone(),
            self.admission,
        )
    }

    /// Stops the worker after resolving every queued frame and returns its
    /// stats. Outstanding sessions lose their link; poll/drain them first.
    pub fn shutdown(self) -> CloudStats {
        let _ = self.tx.send(ToCloud::Shutdown);
        self.handle.join().expect("cloud worker never panics")
    }
}

/// A frame uploaded and awaiting its cloud answer.
struct PendingUpload {
    entered_at: f64,
    sent_at: f64,
    breakdown: LatencyBreakdown,
    local_dets: ImageDetections,
    gts: Vec<GroundTruth>,
}

/// How an edge state machine reaches its cloud: the seam that lets the
/// *same* per-session logic run behind channels (the thread-per-component
/// [`EdgeSession`]) or inline against a [`CloudMachine`] (the fleet
/// engine's event-driven core). Each implementation is monomorphized into
/// [`EdgeMachine`]'s methods, so the channel path compiles to exactly the
/// code it was before the seam existed.
pub(crate) trait CloudPort {
    /// Delivers one message to the cloud; `false` when the cloud is gone.
    fn send(&mut self, msg: ToCloud) -> bool;
    /// Blocks for the next answer routed to this session; `None` once the
    /// cloud is gone and its buffered answers are exhausted.
    fn recv_answer(&mut self) -> Option<(u64, bytes::Bytes)>;
    /// Blocks for the reply to the admission probe just sent (probes are
    /// strictly request/reply); `None` when the cloud is gone.
    fn recv_probe(&mut self) -> Option<ProbeReply>;
}

/// The channel-backed [`CloudPort`]: what [`CloudServer::connect`] wires a
/// session to (the cloud worker lives on its own thread and owns the other
/// ends).
pub(crate) struct ChannelPort {
    tx: Sender<ToCloud>,
    rx: Receiver<(u64, bytes::Bytes)>,
    probe_rx: Receiver<ProbeReply>,
}

impl CloudPort for ChannelPort {
    fn send(&mut self, msg: ToCloud) -> bool {
        self.tx.send(msg).is_ok()
    }

    fn recv_answer(&mut self) -> Option<(u64, bytes::Bytes)> {
        self.rx.recv().ok()
    }

    fn recv_probe(&mut self) -> Option<ProbeReply> {
        self.probe_rx.recv().ok()
    }
}

/// One edge device streaming frames against a [`CloudServer`].
///
/// The session owns a virtual clock, an RNG stream for downlink jitter, and
/// running quality/latency accounting. Frames resolve either locally at
/// [`submit`](Self::submit) time or when [`poll`](Self::poll) /
/// [`drain`](Self::drain) absorbs the cloud's answer.
///
/// Internally the session is a thin facade: all of the above state lives in
/// an [`EdgeMachine`] — a compact, channel-free state machine — wired here
/// to a [`ChannelPort`]. The fleet engine ([`crate::fleet`]) drives the
/// same machines inline against sharded [`CloudMachine`]s, which is how one
/// process carries 10⁵–10⁶ concurrent sessions without a thread or channel
/// per session; this facade keeps the historical thread-per-component shape
/// (and its reports, bit for bit).
pub struct EdgeSession<'a> {
    m: EdgeMachine<'a>,
    port: ChannelPort,
}

/// The per-session state machine behind [`EdgeSession`] (and the unit the
/// fleet engine schedules): everything a session owns *except* the
/// transport it reaches its cloud through — that arrives per call as a
/// [`CloudPort`].
pub(crate) struct EdgeMachine<'a> {
    id: u64,
    cfg: SessionConfig,
    small: &'a (dyn Detector + Sync),
    policy: Box<dyn OffloadPolicy + 'a>,
    /// Whether the cloud enforces a queue limit: uploads then probe for
    /// admission before spending the uplink. `false` sends no probes at
    /// all — the bit-identical path.
    admission: bool,
    /// Cloud queue depth last observed (from probes and answer headers);
    /// surfaced to the policy as [`PolicyInput::cloud_queue`].
    last_cloud_queue: Option<usize>,
    rng: StdRng,
    now: f64,
    metrics: SessionMetrics,
    latency: LatencyStats,
    uplink_bytes: u64,
    deadline_misses: usize,
    link_fallbacks: usize,
    admission_fallbacks: usize,
    uploads: usize,
    frames: usize,
    next_ticket: u64,
    pending: HashMap<u64, PendingUpload>,
    done: HashMap<u64, FrameResult>,
    /// Optional shared memo of upload sizes, keyed by scene identity and
    /// render resolution. `render` is deterministic, so the encoded byte
    /// count is a pure function of the key — the fleet engine shares one
    /// cache across its whole population (sessions cycle a small scene
    /// pool, so renders would otherwise dominate wall-clock by ~500×).
    /// Keys use the `Arc<Scene>` address: only valid while the caller
    /// keeps every cached scene alive, which the fleet engine does for
    /// the duration of a run. `None` (every other deployment) renders
    /// per upload exactly as before.
    size_cache: Option<UploadSizeCache>,
    /// Edge half of the model-update loop: stash → apply-between-frames →
    /// probation → rollback. Inert (and cost-free) unless the cloud
    /// actually pushes updates.
    updates: UpdateClient,
}

/// Shared upload-size memo: `(scene address, width, height)` → encoded
/// bytes. See [`EdgeMachine::size_cache`].
pub(crate) type UploadSizeCache = Arc<Mutex<HashMap<(usize, usize, usize), usize>>>;

/// Per-frame working buffers the fleet engine shares across all sessions
/// of one cloud shard in compact-metrics mode: the counting scratch and
/// the ground-truth staging vector. Every use is call-independent
/// ([`count_detected_with`] and `ground_truths_into` clear before
/// writing), so sharing only removes per-session retained capacity — it
/// cannot change any result.
#[derive(Default)]
pub(crate) struct FleetFrameScratch {
    count: CountScratch,
    gts: Vec<GroundTruth>,
}

/// One [`FleetFrameScratch`] per shard, behind a mutex so [`EdgeMachine`]
/// stays `Send`. Within a shard the lock is uncontended (the drive is
/// single-threaded per shard); a poisoned lock means an earlier frame
/// panicked mid-metric, and the descriptive panic here is converted into
/// a typed fleet error by the shard drive.
pub(crate) type SharedFrameScratch = Arc<Mutex<FleetFrameScratch>>;

const SCRATCH_POISONED: &str =
    "shared fleet frame scratch poisoned: an earlier frame panicked mid-metric";

/// How a session accumulates quality metrics.
///
/// `Full` is the historical per-session state: a [`MapEvaluator`] (mAP
/// over every served frame) plus a private counting scratch — what every
/// deployment except the fleet's aggregate path uses, and what
/// [`SessionReport::map_pct`] is computed from. `Compact` is the fleet
/// engine's memory mode: mAP bookkeeping (detection records, match
/// scratch — multiple KB per live session) is dropped entirely because
/// [`crate::fleet::FleetReport`] never reads it, and the per-frame
/// scratch is borrowed from the shard-shared [`FleetFrameScratch`]. The
/// counting metric stays exact in both modes (running integer sums), so
/// a compact fleet report is bit-identical to a full one.
enum SessionMetrics {
    /// Boxed so a compact fleet's [`EdgeMachine`]s don't carry the full
    /// variant's footprint inline.
    Full(Box<FullMetrics>),
    Compact {
        counter: DatasetCounter,
        shared: SharedFrameScratch,
    },
}

/// The historical per-session metric state (see [`SessionMetrics::Full`]).
struct FullMetrics {
    map: MapEvaluator,
    counter: DatasetCounter,
    scratch: CountScratch,
    /// Reused per-frame ground-truth buffer: local frames borrow it
    /// for metric accumulation (zero allocation when warm); uploads
    /// clone it into their [`PendingUpload`], which costs what the
    /// old per-frame `ground_truths()` allocation did.
    gts: Vec<GroundTruth>,
}

impl SessionMetrics {
    /// Takes the per-frame ground-truth buffer (returned via
    /// [`SessionMetrics::put_gts`] before the frame completes).
    fn take_gts(&mut self) -> Vec<GroundTruth> {
        match self {
            SessionMetrics::Full(full) => std::mem::take(&mut full.gts),
            SessionMetrics::Compact { shared, .. } => {
                std::mem::take(&mut shared.lock().expect(SCRATCH_POISONED).gts)
            }
        }
    }

    fn put_gts(&mut self, buf: Vec<GroundTruth>) {
        match self {
            SessionMetrics::Full(full) => full.gts = buf,
            SessionMetrics::Compact { shared, .. } => {
                shared.lock().expect(SCRATCH_POISONED).gts = buf;
            }
        }
    }

    /// Folds one served frame into the session's quality metrics.
    fn record(&mut self, dets: &ImageDetections, gts: &[GroundTruth], counting: &CountingConfig) {
        match self {
            SessionMetrics::Full(full) => {
                full.map.add_image(dets, gts);
                full.counter
                    .add(count_detected_with(dets, gts, counting, &mut full.scratch));
            }
            SessionMetrics::Compact { counter, shared } => {
                let mut s = shared.lock().expect(SCRATCH_POISONED);
                counter.add(count_detected_with(dets, gts, counting, &mut s.count));
            }
        }
    }

    /// End-to-end mAP (%) of the served results; `0` in compact mode,
    /// which keeps no mAP state (nothing downstream of the fleet's
    /// aggregate path reads it).
    fn map_pct(&self) -> f64 {
        match self {
            SessionMetrics::Full(full) => full.map.evaluate().map_percent(),
            SessionMetrics::Compact { .. } => 0.0,
        }
    }

    fn counter(&self) -> &DatasetCounter {
        match self {
            SessionMetrics::Full(full) => &full.counter,
            SessionMetrics::Compact { counter, .. } => counter,
        }
    }
}

/// How a traced transfer ended after retransmissions.
enum TransferOutcome {
    /// The payload got through: the successful attempt started at `at`
    /// (after `waited_s` of backoff since the first try) and took
    /// `duration_s` on the wire.
    Sent {
        at: f64,
        duration_s: f64,
        waited_s: f64,
    },
    /// The edge gave up at virtual time `at` and serves its local answer.
    /// `missed_deadline` distinguishes a deadline-driven abort from
    /// exhausted retries.
    GaveUp { at: f64, missed_deadline: bool },
}

/// Drives one payload through a traced link against the session's virtual
/// clock: attempts at `start_at`, retransmitting with exponential backoff
/// while the trace (or a drop window) loses them. Gives up when the retry
/// budget runs out, or — with a deadline — as soon as even the transfer
/// alone could no longer meet it (in which case no bytes ever leave the
/// edge, so a total outage involves the cloud not at all).
#[allow(clippy::too_many_arguments)]
fn traced_transfer(
    trace: &LinkTrace,
    link: &LinkModel,
    drop_windows: &[TimeWindow],
    retry: &RetryConfig,
    deadline_s: Option<f64>,
    bytes: usize,
    start_at: f64,
    entered_at: f64,
    rng: &mut StdRng,
) -> TransferOutcome {
    let mut t = start_at;
    let mut attempt: u32 = 0;
    loop {
        let blocked = drop_windows.iter().any(|w| w.contains(t));
        let result = if blocked {
            // A drop window blackholes the attempt deterministically —
            // like an outage, no randomness is drawn.
            LinkAttempt::Outage
        } else {
            trace.attempt_at(link, bytes, t, rng)
        };
        if let LinkAttempt::Sent(duration_s) = result {
            if let Some(deadline) = deadline_s {
                if t + duration_s - entered_at > deadline {
                    // Even the transfer alone misses the deadline: give up
                    // at the deadline without transmitting.
                    return TransferOutcome::GaveUp {
                        at: (entered_at + deadline).max(start_at),
                        missed_deadline: true,
                    };
                }
            }
            return TransferOutcome::Sent {
                at: t,
                duration_s,
                waited_s: t - start_at,
            };
        }
        attempt += 1;
        if attempt > retry.max_retries {
            return TransferOutcome::GaveUp {
                at: t,
                missed_deadline: false,
            };
        }
        let next = t + retry.backoff_s(attempt);
        if let Some(deadline) = deadline_s {
            if next - entered_at > deadline {
                return TransferOutcome::GaveUp {
                    at: (entered_at + deadline).max(t),
                    missed_deadline: true,
                };
            }
        }
        t = next;
    }
}

impl<'a> EdgeSession<'a> {
    pub(crate) fn attach(
        id: u64,
        cfg: SessionConfig,
        small: &'a (dyn Detector + Sync),
        policy: Box<dyn OffloadPolicy + 'a>,
        tx: Sender<ToCloud>,
        admission: bool,
    ) -> EdgeSession<'a> {
        let (resp_tx, resp_rx) = channel::unbounded();
        let (probe_tx, probe_rx) = channel::unbounded();
        tx.send(ToCloud::Register {
            session: id,
            link: cfg.link.clone(),
            resp_tx: AnswerTx::Chan(resp_tx),
            probe_tx: ProbeTx::Chan(probe_tx),
        })
        .expect("cloud server alive");
        EdgeSession {
            m: EdgeMachine::new(id, cfg, small, policy, admission),
            port: ChannelPort {
                tx,
                rx: resp_rx,
                probe_rx,
            },
        }
    }

    /// The session id assigned by the cloud server.
    pub fn id(&self) -> u64 {
        self.m.id()
    }

    /// The session's virtual clock.
    pub fn now(&self) -> f64 {
        self.m.now()
    }

    /// Frames submitted but not yet resolved.
    pub fn outstanding(&self) -> usize {
        self.m.outstanding()
    }

    /// The offload policy's name (for reports). Borrowed for policies with
    /// static names; no allocation per call in that case.
    pub fn policy_name(&self) -> Cow<'static, str> {
        self.m.policy_name()
    }

    /// Cloud queue depth this session last observed (from admission probes
    /// and answer headers), or `None` before any cloud interaction. The
    /// same signal policies receive as [`PolicyInput::cloud_queue`].
    pub fn observed_cloud_queue(&self) -> Option<usize> {
        self.m.observed_cloud_queue()
    }

    /// Advances the session's virtual clock to `t` (a no-op when the clock
    /// is already past it). This is how inter-frame idle time is modelled:
    /// a camera that captures a frame every 500 ms calls
    /// `advance_to(n as f64 * 0.5)` before the n-th submit. Never moves
    /// the clock backwards, so it cannot perturb any existing accounting.
    pub fn advance_to(&mut self, t: f64) {
        self.m.advance_to(t);
    }

    /// Pushes one frame through the edge pipeline.
    ///
    /// Easy cases resolve immediately; difficult cases are rendered,
    /// serialized and queued to the cloud, and resolve on a later
    /// [`poll`](Self::poll) or [`drain`](Self::drain).
    ///
    /// An uploaded scene is cloned once into an [`Arc`]; callers that
    /// already hold scenes behind an `Arc` can avoid even that with
    /// [`submit_shared`](Self::submit_shared).
    pub fn submit(&mut self, scene: &Scene) -> FrameTicket {
        self.m.submit_inner(&mut self.port, scene, None)
    }

    /// [`submit`](Self::submit) for a scene already behind an [`Arc`]:
    /// uploads share the existing allocation instead of cloning the scene.
    ///
    /// Identical to `submit(&scene)` in every observable way (decisions,
    /// timing, reports).
    pub fn submit_shared(&mut self, scene: &Arc<Scene>) -> FrameTicket {
        self.m.submit_inner(&mut self.port, scene, Some(scene))
    }

    /// Blocks until the given frame is resolved and returns its result.
    ///
    /// Returns `None` for tickets this session never issued or whose result
    /// was already taken. Polling a pending ticket flushes the cloud
    /// scheduler so queued partial batches make progress. Answers the cloud
    /// delivered before shutting down are still absorbed after
    /// [`CloudServer::shutdown`].
    ///
    /// # Panics
    ///
    /// Panics if the frame can no longer be resolved because the cloud
    /// server shut down before answering it.
    pub fn poll(&mut self, ticket: FrameTicket) -> Option<FrameResult> {
        self.m.poll(&mut self.port, ticket)
    }

    /// Resolves every outstanding frame and snapshots the session report.
    ///
    /// The session stays usable afterwards — `drain` is "flush plus
    /// report", not a close. Per-frame results not yet taken with
    /// [`poll`](Self::poll) are discarded here (their metrics are already
    /// folded into the report), so a long-lived session that only ever
    /// submits and periodically drains holds bounded memory.
    ///
    /// # Panics
    ///
    /// Panics if outstanding frames can no longer be resolved because the
    /// cloud server shut down before answering them.
    pub fn drain(&mut self) -> SessionReport {
        self.m.drain(&mut self.port)
    }
}

impl<'a> EdgeMachine<'a> {
    /// Builds the session state machine. The caller owns registration:
    /// a `ToCloud::Register` for `id` must reach the cloud (through
    /// whatever port this machine will be driven with) before the first
    /// submit.
    pub(crate) fn new(
        id: u64,
        cfg: SessionConfig,
        small: &'a (dyn Detector + Sync),
        policy: Box<dyn OffloadPolicy + 'a>,
        admission: bool,
    ) -> EdgeMachine<'a> {
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xed6e);
        let metrics = SessionMetrics::Full(Box::new(FullMetrics {
            map: MapEvaluator::new(cfg.num_classes, cfg.ap_protocol),
            counter: DatasetCounter::new(),
            scratch: CountScratch::new(),
            gts: Vec::new(),
        }));
        EdgeMachine {
            id,
            cfg,
            small,
            policy,
            admission,
            last_cloud_queue: None,
            rng,
            now: 0.0,
            metrics,
            latency: LatencyStats::new(),
            uplink_bytes: 0,
            deadline_misses: 0,
            link_fallbacks: 0,
            admission_fallbacks: 0,
            uploads: 0,
            frames: 0,
            next_ticket: 0,
            pending: HashMap::new(),
            done: HashMap::new(),
            size_cache: None,
            updates: UpdateClient::new(),
        }
    }

    /// Installs a shared upload-size memo (fleet engine only); see
    /// [`EdgeMachine::size_cache`] for the validity contract.
    pub(crate) fn set_size_cache(&mut self, cache: UploadSizeCache) {
        self.size_cache = Some(cache);
    }

    /// Switches this session to compact metrics (fleet engine only): no
    /// per-session [`MapEvaluator`], per-frame scratch borrowed from the
    /// shard-shared [`FleetFrameScratch`]. Must be called before the
    /// first submit; [`SessionReport::map_pct`] then reads `0`. See
    /// [`SessionMetrics`] for why this is bit-identical everywhere the
    /// fleet's aggregate path looks.
    pub(crate) fn set_compact_metrics(&mut self, shared: SharedFrameScratch) {
        debug_assert_eq!(
            self.frames, 0,
            "compact metrics must be set before any frame"
        );
        self.metrics = SessionMetrics::Compact {
            counter: DatasetCounter::new(),
            shared,
        };
    }

    /// Encoded upload size of this frame: render + entropy-model encode,
    /// memoised through the shared cache when one is installed and the
    /// scene is pool-shared (cache keys need a stable scene address).
    /// Bit-identical either way — `render` is deterministic, so the memo
    /// only skips recomputing a pure function.
    fn upload_size(&self, scene: &Scene, shared: Option<&Arc<Scene>>) -> usize {
        let (w, h) = self.cfg.frame_size;
        let key = match (&self.size_cache, shared) {
            (Some(_), Some(arc)) => Some((Arc::as_ptr(arc) as usize, w, h)),
            _ => None,
        };
        if let (Some(cache), Some(key)) = (&self.size_cache, key) {
            if let Some(&bytes) = cache.lock().expect("size cache poisoned").get(&key) {
                return bytes;
            }
        }
        let bytes = encoded_size_bytes(&render(
            &scene.render_spec(self.cfg.frame_size.0, self.cfg.frame_size.1),
        ));
        if let (Some(cache), Some(key)) = (&self.size_cache, key) {
            cache
                .lock()
                .expect("size cache poisoned")
                .insert(key, bytes);
        }
        bytes
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn now(&self) -> f64 {
        self.now
    }

    pub(crate) fn outstanding(&self) -> usize {
        self.pending.len()
    }

    pub(crate) fn policy_name(&self) -> Cow<'static, str> {
        self.policy.name()
    }

    pub(crate) fn observed_cloud_queue(&self) -> Option<usize> {
        self.last_cloud_queue
    }

    pub(crate) fn advance_to(&mut self, t: f64) {
        self.now = self.now.max(t);
    }

    pub(crate) fn submit_inner<P: CloudPort>(
        &mut self,
        port: &mut P,
        scene: &Scene,
        shared: Option<&Arc<Scene>>,
    ) -> FrameTicket {
        // Stashed calibration updates apply here, between frames: the
        // previous frame's decision used the old state end to end, this
        // frame's uses the new one. The snapshot taken just before the
        // apply is what a divergence trip rolls back to.
        if let Some(update) = self.updates.take_pending() {
            let fallback = self.policy.calibration_snapshot();
            if self.policy.apply_calibration(&update) {
                self.updates.note_applied(&update, fallback);
            }
        }

        let ticket = FrameTicket(self.next_ticket);
        self.next_ticket += 1;
        self.frames += 1;

        let mut gts = self.metrics.take_gts();
        scene.ground_truths_into(&mut gts);
        let mut breakdown = LatencyBreakdown::default();
        let dets = self.small.detect(scene);
        match self.cfg.pipeline {
            EdgePipeline::Full => {
                breakdown.edge_infer_s = self.cfg.edge.inference_time(self.small.flops());
                breakdown.discriminator_s = self.cfg.discriminator_s;
            }
            EdgePipeline::ModelOnly => {
                breakdown.edge_infer_s = self.cfg.edge.inference_time(self.small.flops());
            }
            EdgePipeline::Bypass => {}
        }
        let link_state = match &self.cfg.link_trace {
            Some(trace) => trace.state_of(&self.cfg.link, self.now),
            None => self.cfg.link.state(),
        };
        let input = PolicyInput {
            scene,
            small_dets: &dets,
            label: None,
            num_classes: self.cfg.num_classes,
            link: Some(link_state),
            cloud_queue: self.last_cloud_queue,
        };
        let decision = self.policy.decide(&input);
        if let Some((fallback, _from)) = self.updates.record_decision(decision.is_upload()) {
            // Probation window ended with a diverged upload fraction:
            // restore the pre-update calibration for every later frame.
            self.policy.restore_calibration(&fallback);
        }
        // The difficulty score rides the wire header for priority
        // schedulers; non-finite scores are clamped out so scheduling keys
        // stay totally ordered.
        let difficulty = if decision.is_upload() {
            let d = self.policy.difficulty(&input).unwrap_or(0.0);
            if d.is_finite() {
                d
            } else {
                0.0
            }
        } else {
            0.0
        };

        self.now += breakdown.edge_infer_s + breakdown.discriminator_s;

        if decision.is_upload() {
            let entered_at = self.now - breakdown.edge_infer_s - breakdown.discriminator_s;
            // Admission control: when the cloud bounds its queue, ask before
            // rendering or spending any uplink. The probe is control-plane
            // only — zero virtual cost, no RNG — and without a queue limit
            // no probe is ever sent (the bit-identical path).
            if self.admission {
                assert!(
                    port.send(ToCloud::Probe {
                        session: self.id,
                        now: self.now,
                    }),
                    "cloud server alive"
                );
                let reply = port.recv_probe().expect("cloud server alive");
                self.last_cloud_queue = Some(reply.queue_depth);
                if !reply.admitted {
                    self.admission_fallbacks += 1;
                    self.resolve(
                        ticket.0, decision, breakdown, dets, &gts, self.now, false, false, true,
                    );
                    self.metrics.put_gts(gts);
                    return ticket;
                }
            }
            let frame_bytes = self.upload_size(scene, shared);
            // Traced links drive the uplink from the edge (retransmitting
            // against the virtual clock); static links let the cloud draw
            // the transfer in arrival order, exactly as the seed did.
            let uplink = match &self.cfg.link_trace {
                None => None,
                Some(trace) => Some(traced_transfer(
                    trace,
                    &self.cfg.link,
                    &self.cfg.drop_windows,
                    &self.cfg.retry,
                    self.cfg.deadline_s,
                    frame_bytes,
                    self.now,
                    entered_at,
                    &mut self.rng,
                )),
            };
            if let Some(TransferOutcome::GaveUp {
                at,
                missed_deadline,
            }) = uplink
            {
                // The frame never reaches the cloud: serve the local answer
                // once the edge stops retrying.
                breakdown.retransmit_s = (at - self.now).max(0.0);
                self.link_fallbacks += 1;
                if missed_deadline {
                    self.deadline_misses += 1;
                }
                self.now = self.now.max(at);
                let completed_at = self.now;
                self.resolve(
                    ticket.0,
                    decision,
                    breakdown,
                    dets,
                    &gts,
                    completed_at,
                    missed_deadline,
                    true,
                    false,
                );
            } else {
                let (sent_at, uplink_s) = match uplink {
                    None => (self.now, None),
                    Some(TransferOutcome::Sent {
                        at,
                        duration_s,
                        waited_s,
                    }) => {
                        breakdown.retransmit_s = waited_s;
                        (at, Some(duration_s))
                    }
                    Some(TransferOutcome::GaveUp { .. }) => unreachable!("handled above"),
                };
                self.uplink_bytes += frame_bytes as u64;
                self.uploads += 1;
                let req = SubmitRequest {
                    session: self.id,
                    ticket: ticket.0,
                    frame_bytes,
                    sent_at,
                    uplink_s,
                    difficulty,
                    deadline_at: self.cfg.deadline_s.map(|d| entered_at + d),
                    small_count: dets.count_above(PREDICTION_THRESHOLD),
                };
                let scene_arc = match shared {
                    Some(arc) => Arc::clone(arc),
                    None => Arc::new(scene.clone()),
                };
                assert!(
                    port.send(ToCloud::Frame(req, scene_arc)),
                    "cloud server alive"
                );
                self.pending.insert(
                    ticket.0,
                    PendingUpload {
                        entered_at,
                        sent_at,
                        breakdown,
                        local_dets: dets,
                        gts: gts.clone(),
                    },
                );
            }
        } else {
            self.resolve(
                ticket.0, decision, breakdown, dets, &gts, self.now, false, false, false,
            );
        }
        self.metrics.put_gts(gts);
        ticket
    }

    /// [`EdgeSession::poll`], against any [`CloudPort`].
    pub(crate) fn poll<P: CloudPort>(
        &mut self,
        port: &mut P,
        ticket: FrameTicket,
    ) -> Option<FrameResult> {
        if let Some(done) = self.done.remove(&ticket.0) {
            return Some(done);
        }
        if !self.pending.contains_key(&ticket.0) {
            return None;
        }
        // A dead worker has already flushed everything it will ever answer
        // into our response channel, so a failed Flush is not yet fatal —
        // keep absorbing buffered answers.
        let _ = port.send(ToCloud::Flush { session: self.id });
        while self.pending.contains_key(&ticket.0) {
            match port.recv_answer() {
                Some((crate::UPDATE_TICKET, bytes)) => self.stash_update(&bytes),
                Some((_, bytes)) => self.absorb_response(&bytes),
                None => panic!(
                    "cloud server shut down with {} of this session's frames unresolved",
                    self.pending.len()
                ),
            }
        }
        self.done.remove(&ticket.0)
    }

    /// [`EdgeSession::drain`], against any [`CloudPort`].
    pub(crate) fn drain<P: CloudPort>(&mut self, port: &mut P) -> SessionReport {
        if !self.pending.is_empty() {
            // As in `poll`: a dead worker already flushed its answers.
            let _ = port.send(ToCloud::Flush { session: self.id });
            while !self.pending.is_empty() {
                match port.recv_answer() {
                    Some((crate::UPDATE_TICKET, bytes)) => self.stash_update(&bytes),
                    Some((_, bytes)) => self.absorb_response(&bytes),
                    None => panic!(
                        "cloud server shut down with {} of this session's frames unresolved",
                        self.pending.len()
                    ),
                }
            }
        }
        self.done.clear();
        SessionReport {
            session: self.id,
            frames: self.frames,
            uploads: self.uploads,
            map_pct: self.metrics.map_pct(),
            detected: self.metrics.counter().total_detected(),
            total_gt: self.metrics.counter().total_gt(),
            total_time_s: self.now,
            upload_ratio: if self.frames == 0 {
                0.0
            } else {
                self.uploads as f64 / self.frames as f64
            },
            latency: self.latency.clone(),
            uplink_bytes: self.uplink_bytes,
            deadline_misses: self.deadline_misses,
            link_fallbacks: self.link_fallbacks,
            admission_fallbacks: self.admission_fallbacks,
            calibration_version: self.updates.active_version,
            updates_applied: self.updates.applied,
            rollbacks: self.updates.rollbacks,
        }
    }

    /// Stashes a pushed [`CalibrationUpdate`] for the between-frames apply.
    fn stash_update(&mut self, bytes: &bytes::Bytes) {
        let update: crate::CalibrationUpdate =
            decode_frame(bytes).expect("cloud sends well-formed update frames");
        self.updates.stash(update);
    }

    /// Applies one cloud answer: downlink timing, deadline check, metrics.
    fn absorb_response(&mut self, bytes: &bytes::Bytes) {
        let resp: SubmitResponse = decode_frame(bytes).expect("cloud sends well-formed frames");
        self.last_cloud_queue = Some(resp.queue_depth);
        let p = self
            .pending
            .remove(&resp.ticket)
            .expect("cloud answers match pending frames");
        let mut breakdown = p.breakdown;
        // Traced links drive the downlink like the uplink: attempts from
        // the server's send time, retransmitting with backoff. A downlink
        // that gives up serves the local answer (`link_fallback`) — the
        // cloud's work is spent either way.
        let downlink = match &self.cfg.link_trace {
            None => {
                let d = self
                    .cfg
                    .link
                    .transfer_time(result_size_bytes(resp.dets.len()), &mut self.rng);
                Some((d, resp.sent_at + d))
            }
            Some(trace) => match traced_transfer(
                trace,
                &self.cfg.link,
                &self.cfg.drop_windows,
                &self.cfg.retry,
                self.cfg.deadline_s,
                result_size_bytes(resp.dets.len()),
                resp.sent_at,
                p.entered_at,
                &mut self.rng,
            ) {
                TransferOutcome::Sent {
                    at,
                    duration_s,
                    waited_s,
                } => {
                    breakdown.retransmit_s += waited_s;
                    Some((duration_s, at + duration_s))
                }
                TransferOutcome::GaveUp {
                    at,
                    missed_deadline,
                } => {
                    if !missed_deadline {
                        // Retries exhausted without a deadline: account the
                        // round trip the edge did wait for, serve local.
                        self.link_fallbacks += 1;
                        breakdown.uplink_s = resp.uplink_s;
                        breakdown.cloud_infer_s = resp.infer_s
                            + (resp.sent_at - p.sent_at - resp.uplink_s - resp.infer_s).max(0.0);
                        breakdown.retransmit_s += (at - resp.sent_at).max(0.0);
                        let completed_at = at.max(p.sent_at);
                        self.now = self.now.max(completed_at);
                        self.resolve(
                            resp.ticket,
                            Decision::Upload,
                            breakdown,
                            p.local_dets,
                            &p.gts,
                            completed_at,
                            false,
                            true,
                            false,
                        );
                        return;
                    }
                    // Deadline-driven give-up: fall through to the shared
                    // missed-deadline accounting below.
                    None
                }
            },
        };
        let (missed, final_dets, completed_at) = match downlink {
            Some((downlink_s, answer_at))
                if !self
                    .cfg
                    .deadline_s
                    .map(|d| answer_at - p.entered_at > d)
                    .unwrap_or(false) =>
            {
                breakdown.uplink_s = resp.uplink_s;
                breakdown.cloud_infer_s = resp.infer_s
                    + (resp.sent_at - p.sent_at - resp.uplink_s - resp.infer_s).max(0.0);
                breakdown.downlink_s = downlink_s;
                (false, resp.dets, answer_at)
            }
            _ => {
                // The edge gives up waiting and serves the local result; the
                // upload bandwidth is already spent.
                self.deadline_misses += 1;
                let deadline = self.cfg.deadline_s.expect("missed implies a deadline");
                let waited = (p.entered_at + deadline - p.sent_at).max(0.0);
                breakdown.uplink_s = waited;
                (true, p.local_dets, p.sent_at + waited)
            }
        };
        self.now = self.now.max(completed_at);
        self.resolve(
            resp.ticket,
            Decision::Upload,
            breakdown,
            final_dets,
            &p.gts,
            completed_at,
            missed,
            false,
            false,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &mut self,
        ticket: u64,
        decision: Decision,
        breakdown: LatencyBreakdown,
        dets: ImageDetections,
        gts: &[GroundTruth],
        completed_at: f64,
        missed_deadline: bool,
        link_fallback: bool,
        admission_fallback: bool,
    ) {
        self.latency.add(breakdown);
        self.metrics.record(&dets, gts, &self.cfg.counting);
        self.done.insert(
            ticket,
            FrameResult {
                ticket: FrameTicket(ticket),
                decision,
                dets,
                breakdown,
                completed_at,
                missed_deadline,
                link_fallback,
                admission_fallback,
            },
        );
    }
}

impl Drop for EdgeSession<'_> {
    fn drop(&mut self) {
        // Best-effort: the cloud may already be gone.
        let _ = self
            .port
            .tx
            .send(ToCloud::Deregister { session: self.m.id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DifficultCaseDiscriminator, Policy, Thresholds};
    use datagen::{Dataset, DatasetProfile, SplitId};
    use modelzoo::{ModelKind, SimDetector};

    fn fixture() -> (Dataset, SimDetector, Arc<dyn Detector + Send + Sync>) {
        let data = Dataset::generate("t", &DatasetProfile::helmet(), 30, 9);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
        let big: Arc<dyn Detector + Send + Sync> =
            Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
        (data, small, big)
    }

    fn disc() -> DifficultCaseDiscriminator {
        DifficultCaseDiscriminator::new(Thresholds {
            conf: 0.21,
            count: 4,
            area: 0.03,
        })
    }

    fn small_session() -> SessionConfig {
        SessionConfig {
            frame_size: (96, 96),
            ..SessionConfig::new(2)
        }
    }

    #[test]
    fn single_session_round_trips_every_frame() {
        let (data, small, big) = fixture();
        let mut cloud = CloudServer::spawn(CloudConfig::default(), big);
        let mut session = cloud.connect(small_session(), &small, Box::new(disc()));
        let mut tickets = Vec::new();
        for scene in data.iter() {
            tickets.push(session.submit(scene));
        }
        for t in tickets {
            let r = session.poll(t).expect("every ticket resolves");
            assert!(r.completed_at > 0.0);
            assert!(session.poll(t).is_none(), "results are taken once");
        }
        let report = session.drain();
        assert_eq!(report.frames, 30);
        assert!(report.total_time_s > 0.0);
        drop(session);
        let stats = cloud.shutdown();
        assert_eq!(stats.served, report.uploads);
    }

    #[test]
    fn multi_session_is_deterministic() {
        let run = || {
            let (data, small, big) = fixture();
            let mut cloud = CloudServer::spawn(CloudConfig::default(), big);
            let links = [
                LinkModel::wlan(),
                LinkModel::fast_wifi(),
                LinkModel::cellular(),
            ];
            let mut sessions: Vec<EdgeSession<'_>> = links
                .iter()
                .enumerate()
                .map(|(i, link)| {
                    cloud.connect(
                        SessionConfig {
                            link: link.clone(),
                            seed: 0x5417 + i as u64,
                            ..small_session()
                        },
                        &small,
                        Box::new(disc()),
                    )
                })
                .collect();
            for scene in data.iter() {
                for s in sessions.iter_mut() {
                    let t = s.submit(scene);
                    let _ = s.poll(t);
                }
            }
            let reports: Vec<SessionReport> = sessions.iter_mut().map(|s| s.drain()).collect();
            drop(sessions);
            (reports, cloud.shutdown())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(sa.sessions, 3);
    }

    #[test]
    fn batching_preserves_decisions_and_bounds_time() {
        let (data, small, big) = fixture();
        let run = |max_batch: usize| {
            let mut cloud = CloudServer::spawn(
                CloudConfig {
                    max_batch,
                    ..CloudConfig::default()
                },
                Arc::clone(&big),
            );
            let mut a = cloud.connect(small_session(), &small, Box::new(disc()));
            let mut b = cloud.connect(small_session(), &small, Box::new(Policy::CloudOnly));
            for scene in data.iter() {
                a.submit(scene);
                b.submit(scene);
            }
            let (ra, rb) = (a.drain(), b.drain());
            drop((a, b));
            (ra, rb, cloud.shutdown())
        };
        let (a1, b1, s1) = run(1);
        let (a4, b4, s4) = run(4);
        // Routing decisions are batch-independent.
        assert_eq!(a1.uploads, a4.uploads);
        assert_eq!(b1.uploads, b4.uploads);
        assert_eq!(b1.uploads, 30);
        assert_eq!(s1.served, s4.served);
        // Batching fuses work into fewer, cheaper server passes.
        assert!(s4.batches < s1.batches);
        assert!(s4.busy_s < s1.busy_s);
        // Quality is unchanged: same models, same routed frames.
        assert_eq!(a1.detected, a4.detected);
        assert_eq!(b1.map_pct, b4.map_pct);
    }

    #[test]
    fn deadline_falls_back_locally_in_sessions() {
        let (data, small, big) = fixture();
        let mut cloud = CloudServer::spawn(CloudConfig::default(), big);
        let mut session = cloud.connect(
            SessionConfig {
                deadline_s: Some(0.15),
                ..small_session()
            },
            &small,
            Box::new(disc()),
        );
        let mut missed = 0usize;
        for scene in data.iter() {
            let t = session.submit(scene);
            let r = session.poll(t).expect("resolves");
            if r.missed_deadline {
                missed += 1;
            }
        }
        let report = session.drain();
        assert_eq!(report.deadline_misses, missed);
        if report.uploads > 0 {
            assert!(missed > 0, "WLAN cannot meet 150 ms");
        }
    }

    #[test]
    fn poll_after_shutdown_absorbs_buffered_answers() {
        let (data, small, big) = fixture();
        let mut cloud = CloudServer::spawn(CloudConfig::default(), big);
        let mut session = cloud.connect(small_session(), &small, Box::new(Policy::CloudOnly));
        let tickets: Vec<FrameTicket> = data.iter().take(5).map(|s| session.submit(s)).collect();
        // The worker flushes every queued frame into the session's response
        // channel before exiting; polling afterwards must still resolve.
        let stats = cloud.shutdown();
        assert_eq!(stats.served, 5);
        for t in tickets {
            let r = session.poll(t).expect("buffered answer resolves");
            assert_eq!(r.decision, Decision::Upload);
        }
        let report = session.drain();
        assert_eq!(report.uploads, 5);
    }

    #[test]
    fn worker_pool_reports_bit_identical() {
        // A multi-threaded inference pool must change wall-clock speed only:
        // session reports and cloud stats are compared bit-for-bit against
        // the single-worker run, across batching modes.
        let run = |workers: usize, max_batch: usize| {
            let (data, small, big) = fixture();
            let mut cloud = CloudServer::spawn(
                CloudConfig {
                    workers,
                    max_batch,
                    ..CloudConfig::default()
                },
                big,
            );
            let mut a = cloud.connect(small_session(), &small, Box::new(disc()));
            let mut b = cloud.connect(small_session(), &small, Box::new(Policy::CloudOnly));
            for scene in data.iter() {
                a.submit(scene);
                b.submit(scene);
            }
            let (ra, rb) = (a.drain(), b.drain());
            drop((a, b));
            (ra, rb, cloud.shutdown())
        };
        for max_batch in [1, 4] {
            let baseline = run(1, max_batch);
            for workers in [2, 4] {
                assert_eq!(run(workers, max_batch), baseline, "workers = {workers}");
            }
        }
    }

    /// A detector whose `detect` panics — stands in for a buggy user
    /// implementation behind the public [`Detector`] trait.
    struct PanickyDetector(SimDetector);

    impl Detector for PanickyDetector {
        fn name(&self) -> &'static str {
            "panicky"
        }
        fn detect(&self, _scene: &datagen::Scene) -> ImageDetections {
            panic!("panicky detector always fails");
        }
        fn flops(&self) -> u64 {
            self.0.flops()
        }
        fn model_size_bytes(&self) -> u64 {
            self.0.model_size_bytes()
        }
    }

    #[test]
    #[should_panic(expected = "cloud")]
    fn panicking_pooled_worker_fails_loudly_instead_of_deadlocking() {
        let (data, small, _) = fixture();
        let big: Arc<dyn Detector + Send + Sync> = Arc::new(PanickyDetector(SimDetector::new(
            ModelKind::SsdVgg16,
            SplitId::Helmet,
            2,
        )));
        let mut cloud = CloudServer::spawn(
            CloudConfig {
                workers: 2,
                ..CloudConfig::default()
            },
            big,
        );
        let mut session = cloud.connect(small_session(), &small, Box::new(Policy::CloudOnly));
        // The worker's panic is forwarded to the scheduler, which unwinds;
        // the session then fails its poll (or a later submit) instead of
        // blocking forever on a result that cannot arrive.
        let tickets: Vec<FrameTicket> = data.iter().take(3).map(|s| session.submit(s)).collect();
        for t in tickets {
            let _ = session.poll(t);
        }
    }

    #[test]
    fn submit_shared_matches_submit() {
        let (data, small, big) = fixture();
        let run = |shared: bool| {
            let mut cloud = CloudServer::spawn(CloudConfig::default(), Arc::clone(&big));
            let mut session = cloud.connect(small_session(), &small, Box::new(disc()));
            for scene in data.iter() {
                if shared {
                    let arc = Arc::new(scene.clone());
                    session.submit_shared(&arc);
                } else {
                    session.submit(scene);
                }
            }
            let report = session.drain();
            drop(session);
            (report, cloud.shutdown())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn poll_unknown_ticket_is_none() {
        let (_, small, big) = fixture();
        let mut cloud = CloudServer::spawn(CloudConfig::default(), big);
        let mut session = cloud.connect(small_session(), &small, Box::new(disc()));
        assert!(session.poll(FrameTicket(99)).is_none());
        drop(session);
        cloud.shutdown();
    }
}
