//! High-level assembly of a small-big deployment: the builder a downstream
//! user reaches for first.

use crate::{
    calibrate, evaluate, run_system, Calibration, DifficultCaseDiscriminator, EvalConfig,
    EvalOutcome, Policy, RuntimeConfig, RuntimeMode, RuntimeReport, Thresholds,
};
use datagen::Dataset;
use modelzoo::{Detector, ModelKind, SimDetector};

/// Builder for a complete small-big deployment.
///
/// Bundles the edge's small model, the cloud's big model and a calibrated
/// discriminator, and exposes the two things a user does with the system:
/// batch evaluation and the live runtime.
///
/// # Examples
///
/// ```
/// use datagen::{Split, SplitId};
/// use smallbig_core::SmallBigSystem;
///
/// let split = Split::load_scaled(SplitId::Voc07, 0.01);
/// let system = SmallBigSystem::builder(SplitId::Voc07)
///     .calibrated_on(&split.train)
///     .build();
/// let outcome = system.evaluate(&split.test);
/// assert!(outcome.upload_ratio > 0.0 && outcome.upload_ratio < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SmallBigSystem {
    small: SimDetector,
    big: SimDetector,
    discriminator: DifficultCaseDiscriminator,
    calibration: Option<Calibration>,
}

/// Configures and builds a [`SmallBigSystem`].
#[derive(Debug, Clone)]
pub struct SmallBigSystemBuilder {
    split: datagen::SplitId,
    small_kind: ModelKind,
    big_kind: ModelKind,
    num_classes: Option<usize>,
    thresholds: Option<Thresholds>,
    calibration: Option<Calibration>,
}

impl SmallBigSystem {
    /// Starts building a system for the given split's data distribution,
    /// defaulting to small model 1 (VGG-Lite) and SSD300-VGG16.
    pub fn builder(split: datagen::SplitId) -> SmallBigSystemBuilder {
        SmallBigSystemBuilder {
            split,
            small_kind: ModelKind::VggLiteSsd,
            big_kind: ModelKind::SsdVgg16,
            num_classes: None,
            thresholds: None,
            calibration: None,
        }
    }

    /// The edge-side small model.
    pub fn small(&self) -> &SimDetector {
        &self.small
    }

    /// The cloud-side big model.
    pub fn big(&self) -> &SimDetector {
        &self.big
    }

    /// The discriminator in use.
    pub fn discriminator(&self) -> &DifficultCaseDiscriminator {
        &self.discriminator
    }

    /// The calibration record, when the system was calibrated on data.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Batch-evaluates the system on a test dataset.
    pub fn evaluate(&self, test: &Dataset) -> EvalOutcome {
        evaluate(
            test,
            &self.small,
            &self.big,
            &Policy::DifficultCase(self.discriminator.clone()),
            &EvalConfig::default(),
        )
    }

    /// Runs the live threaded edge-cloud runtime over a dataset.
    pub fn run(&self, test: &Dataset, config: &RuntimeConfig) -> RuntimeReport {
        run_system(
            test,
            &self.small,
            &self.big,
            &self.discriminator,
            RuntimeMode::SmallBig,
            config,
        )
    }

    /// Classifies one image's small-model output (the edge-side hot path).
    pub fn classify(&self, scene: &datagen::Scene) -> (crate::CaseKind, detcore::ImageDetections) {
        let dets = self.small.detect(scene);
        (self.discriminator.classify(&dets), dets)
    }
}

impl SmallBigSystemBuilder {
    /// Selects the small (edge) model architecture.
    pub fn small_model(mut self, kind: ModelKind) -> Self {
        self.small_kind = kind;
        self
    }

    /// Selects the big (cloud) model architecture.
    pub fn big_model(mut self, kind: ModelKind) -> Self {
        self.big_kind = kind;
        self
    }

    /// Overrides the number of classes (defaults to the split's taxonomy).
    pub fn num_classes(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one class");
        self.num_classes = Some(n);
        self
    }

    /// Uses explicit thresholds instead of calibrating.
    pub fn thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }

    /// Calibrates the three thresholds on a training dataset (Sec. V-D).
    pub fn calibrated_on(mut self, train: &Dataset) -> Self {
        let nc = self.num_classes.unwrap_or_else(|| train.taxonomy().len());
        let small = SimDetector::new(self.small_kind, self.split, nc);
        let big = SimDetector::new(self.big_kind, self.split, nc);
        let (cal, _) = calibrate(train, &small, &big);
        self.num_classes = Some(nc);
        self.thresholds = Some(cal.thresholds);
        self.calibration = Some(cal);
        self
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if neither [`Self::thresholds`] nor [`Self::calibrated_on`]
    /// was called and no default applies, or `num_classes` was never
    /// resolvable (it defaults to the split's taxonomy size).
    pub fn build(self) -> SmallBigSystem {
        let nc = self.num_classes.unwrap_or_else(|| {
            use datagen::SplitId::*;
            match self.split {
                Voc07 | Voc0712 | Voc0712pp => 20,
                Coco18 => 18,
                Helmet => 2,
            }
        });
        let thresholds = self.thresholds.unwrap_or_default();
        SmallBigSystem {
            small: SimDetector::new(self.small_kind, self.split, nc),
            big: SimDetector::new(self.big_kind, self.split, nc),
            discriminator: DifficultCaseDiscriminator::new(thresholds),
            calibration: self.calibration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{Split, SplitId};

    #[test]
    fn builder_defaults_work() {
        let system = SmallBigSystem::builder(SplitId::Helmet).build();
        assert_eq!(system.small().num_classes(), 2);
        assert_eq!(system.big().num_classes(), 2);
        assert!(system.calibration().is_none());
    }

    #[test]
    fn calibrated_build_records_calibration() {
        let split = Split::load_scaled(SplitId::Voc07, 0.01);
        let system = SmallBigSystem::builder(SplitId::Voc07)
            .calibrated_on(&split.train)
            .build();
        let cal = system.calibration().expect("calibrated");
        assert_eq!(system.discriminator().thresholds(), cal.thresholds);
    }

    #[test]
    fn builder_evaluate_matches_manual_pipeline() {
        let split = Split::load_scaled(SplitId::Voc07, 0.01);
        let system = SmallBigSystem::builder(SplitId::Voc07)
            .calibrated_on(&split.train)
            .build();
        let via_builder = system.evaluate(&split.test);

        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        let (cal, _) = calibrate(&split.train, &small, &big);
        let manual = evaluate(
            &split.test,
            &small,
            &big,
            &Policy::DifficultCase(DifficultCaseDiscriminator::new(cal.thresholds)),
            &EvalConfig::default(),
        );
        assert_eq!(via_builder, manual);
    }

    #[test]
    fn yolo_configuration() {
        let system = SmallBigSystem::builder(SplitId::Voc07)
            .small_model(ModelKind::YoloMobileNetV1)
            .big_model(ModelKind::YoloV4)
            .thresholds(Thresholds {
                conf: 0.16,
                count: 3,
                area: 0.05,
            })
            .build();
        assert!(system.big().flops() > system.small().flops() * 5);
    }

    #[test]
    fn classify_returns_verdict_and_dets() {
        let split = Split::load_scaled(SplitId::Voc07, 0.01);
        let system = SmallBigSystem::builder(SplitId::Voc07).build();
        let (verdict, dets) = system.classify(&split.test.scenes()[0]);
        let _ = verdict; // either outcome is valid; just must be consistent:
        assert_eq!(
            system.discriminator().classify(&dets),
            system.classify(&split.test.scenes()[0]).0
        );
    }
}
