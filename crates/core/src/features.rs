//! Semantic-feature extraction from the small model's preliminary result.
//!
//! The discriminator never looks at pixels: it reads two semantic features
//! off the small model's raw detections (Sec. V-B) — the estimated **number
//! of objects** and the estimated **minimum object area ratio** — plus the
//! count the small model would report at the standard 0.5 prediction
//! threshold.

use detcore::ImageDetections;
use serde::{Deserialize, Serialize};

/// The standard prediction threshold: boxes scoring below 0.5 are not
/// reported as detections (Sec. V-A).
pub const PREDICTION_THRESHOLD: f64 = 0.5;

/// Semantic features of one image, as seen by the discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SemanticFeatures {
    /// Objects the small model *predicts* (score ≥ 0.5).
    pub predicted_count: usize,
    /// Objects estimated after noise filtering at the calibrated confidence
    /// threshold (score ≥ `t_conf`, typically 0.15–0.35).
    pub estimated_count: usize,
    /// Smallest box area among the estimated objects (`None` if none).
    pub estimated_min_area: Option<f64>,
}

impl SemanticFeatures {
    /// Extracts features from the small model's raw output.
    ///
    /// # Examples
    ///
    /// ```
    /// use detcore::{BBox, ClassId, Detection, ImageDetections};
    /// use smallbig_core::SemanticFeatures;
    ///
    /// // The paper's Fig. 6: a person at 0.98 and a missed dog at 0.25.
    /// let dets = ImageDetections::from_vec(vec![
    ///     Detection::new(ClassId(14), 0.9818, BBox::new(0.007, 0.02, 0.99, 0.97).unwrap()),
    ///     Detection::new(ClassId(11), 0.2507, BBox::new(0.089, 0.42, 0.66, 0.92).unwrap()),
    /// ]);
    /// let f = SemanticFeatures::extract(&dets, 0.2);
    /// assert_eq!(f.predicted_count, 1); // only the person clears 0.5
    /// assert_eq!(f.estimated_count, 2); // the dog's box survives filtering
    /// assert!(f.all_detected() == false);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `t_conf` is not in `(0, PREDICTION_THRESHOLD]`.
    pub fn extract(dets: &ImageDetections, t_conf: f64) -> SemanticFeatures {
        assert!(
            t_conf > 0.0 && t_conf <= PREDICTION_THRESHOLD,
            "noise-filter threshold must be in (0, 0.5], got {t_conf}"
        );
        SemanticFeatures {
            predicted_count: dets.count_above(PREDICTION_THRESHOLD),
            estimated_count: dets.count_above(t_conf),
            estimated_min_area: dets.min_area_above(t_conf),
        }
    }

    /// The step-1 shortcut (Sec. V-C-1): if the predicted count equals the
    /// estimated count, "the value of the threshold does not make a
    /// difference and there is no uncertain object" — presumably easy.
    pub fn all_detected(&self) -> bool {
        self.predicted_count == self.estimated_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detcore::{BBox, ClassId, Detection};

    fn det(score: f64, side: f64) -> Detection {
        Detection::new(
            ClassId(0),
            score,
            BBox::new(0.1, 0.1, 0.1 + side, 0.1 + side).unwrap(),
        )
    }

    #[test]
    fn empty_detections() {
        let f = SemanticFeatures::extract(&ImageDetections::new(), 0.2);
        assert_eq!(f.predicted_count, 0);
        assert_eq!(f.estimated_count, 0);
        assert_eq!(f.estimated_min_area, None);
        assert!(f.all_detected());
    }

    #[test]
    fn counts_split_by_thresholds() {
        let dets = ImageDetections::from_vec(vec![
            det(0.9, 0.5),
            det(0.3, 0.2),  // sub-threshold box
            det(0.05, 0.1), // noise, below t_conf
        ]);
        let f = SemanticFeatures::extract(&dets, 0.2);
        assert_eq!(f.predicted_count, 1);
        assert_eq!(f.estimated_count, 2);
        assert!(!f.all_detected());
        assert!((f.estimated_min_area.unwrap() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn min_area_ignores_sub_tconf_boxes() {
        let dets = ImageDetections::from_vec(vec![det(0.9, 0.5), det(0.1, 0.01)]);
        let f = SemanticFeatures::extract(&dets, 0.2);
        assert!((f.estimated_min_area.unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "noise-filter threshold")]
    fn rejects_threshold_above_half() {
        let _ = SemanticFeatures::extract(&ImageDetections::new(), 0.6);
    }
}
