//! Deterministic parallel fan-out for the evaluation harness.
//!
//! The harness's hot loops (running both detectors over a test set,
//! labelling a training set, regenerating independent experiments) are maps
//! of a pure function over an index range. [`ordered_map`] runs such maps
//! over a [`std::thread::scope`] worker pool fed by the vendored crossbeam
//! channels and merges results back **in index order**, so output is
//! bit-identical to the sequential loop no matter how many workers run or
//! how they interleave — parallelism changes wall-clock time only.

use crossbeam::channel;

/// Number of harness worker threads for `jobs` independent jobs.
///
/// Defaults to [`std::thread::available_parallelism`], capped by the job
/// count. The `SMALLBIG_HARNESS_WORKERS` environment variable overrides the
/// default (values `0` or unparsable fall back to it); `1` forces the exact
/// sequential code path, which the throughput bench uses to measure
/// parallel speedup.
pub fn harness_workers(jobs: usize) -> usize {
    harness_workers_from(
        std::env::var("SMALLBIG_HARNESS_WORKERS").ok().as_deref(),
        jobs,
    )
}

/// [`harness_workers`] with the environment override supplied by the caller
/// (kept pure so it can be tested without mutating process-global state).
fn harness_workers_from(env_override: Option<&str>, jobs: usize) -> usize {
    let configured = env_override
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    configured.min(jobs).max(1)
}

/// Applies `f` to every index in `0..jobs` and returns the outputs in index
/// order.
///
/// With more than one worker (see [`harness_workers`]) the indices fan out
/// over scoped threads; `f` must therefore be pure for the merged output to
/// be deterministic — which every harness job (deterministic detectors,
/// pure labelling) is. With one worker this is exactly a sequential loop,
/// with no threads spawned and no channel traffic.
///
/// # Examples
///
/// ```
/// use smallbig_core::par::ordered_map;
///
/// let squares = ordered_map(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn ordered_map<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    ordered_map_with(harness_workers(jobs), jobs, f)
}

/// [`ordered_map`] with an explicit worker count. Crate-visible so the
/// fleet engine can fan its shard drives out over the same scoped-worker
/// machinery with its own thread knob ([`crate::fleet::FleetSpec::threads`])
/// instead of the harness default.
pub(crate) fn ordered_map_with<T, F>(workers: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }

    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for i in 0..jobs {
        job_tx.send(i).expect("receiver alive");
    }
    drop(job_tx);

    let (done_tx, done_rx) = channel::unbounded::<(usize, T)>();
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(jobs, || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok(i) = job_rx.recv() {
                    if done_tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);
        while let Ok((i, value)) = done_rx.recv() {
            results[i] = Some(value);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_is_in_index_order() {
        let out = ordered_map(100, |i| i as u64 * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn ordered_map_handles_empty_and_single() {
        assert_eq!(ordered_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(ordered_map(1, |i| i + 7), vec![7]);
    }

    // Worker-count selection and the worker-count invariance of the output
    // are tested through the pure internals — mutating the process-global
    // environment from a test would race with concurrently running tests
    // that read it.

    #[test]
    fn output_stable_under_any_worker_count() {
        let sequential: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [1, 2, 5] {
            assert_eq!(ordered_map_with(workers, 37, |i| i * i), sequential);
        }
    }

    #[test]
    fn worker_count_override_and_job_cap() {
        assert_eq!(harness_workers_from(Some("8"), 3), 3);
        assert_eq!(harness_workers_from(Some("8"), 100), 8);
        assert_eq!(harness_workers_from(Some("1"), 100), 1);
        // Zero or garbage falls back to the host default (at least 1).
        assert!(harness_workers_from(Some("0"), 100) >= 1);
        assert!(harness_workers_from(Some("lots"), 100) >= 1);
        assert!(harness_workers_from(None, 100) >= 1);
    }
}
