//! Offload policies: the extensible [`OffloadPolicy`] trait, the concrete
//! [`Policy`] catalogue, and the streaming quantile adapter.
//!
//! Two ways to decide:
//!
//! * **Streaming** — [`OffloadPolicy::decide`] sees one frame at a time in
//!   arrival order. This is what [`crate::EdgeSession`] consumes; implement
//!   the trait to plug a custom strategy into the runtime without touching
//!   this crate.
//! * **Batch** — [`Policy::decide_all`] sees the whole test set at once and
//!   reproduces the paper's protocol (quantile baselines sort the entire
//!   set and upload the worst fraction).
//!
//! The catalogue:
//!
//! * [`Policy::DifficultCase`] — the paper's discriminator (Sec. V).
//! * [`Policy::CloudOnly`] / [`Policy::EdgeOnly`] — the two extremes.
//! * [`Policy::Random`] — upload a random 50 % (Sec. VI-E-1).
//! * [`Policy::BlurQuantile`] — upload the blurriest images by Brenner
//!   gradient (Sec. VI-E-2, Eq. 2).
//! * [`Policy::Top1Quantile`] — upload the images with the lowest mean
//!   per-class top-1 confidence (Sec. VI-E-3).
//! * [`Policy::Oracle`] — upload exactly the true difficult cases (upper
//!   bound, not in the paper; used for ablations).

use crate::{CaseKind, DifficultCaseDiscriminator};
use datagen::Scene;
use detcore::ImageDetections;
use imaging::{brenner_gradient, render};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Per-image routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Keep the small model's local result.
    Local,
    /// Upload to the cloud; the big model's result becomes final.
    Upload,
}

impl Decision {
    /// `true` when the image is uploaded.
    pub fn is_upload(&self) -> bool {
        matches!(self, Decision::Upload)
    }
}

/// Everything a policy may consult for one image.
#[derive(Debug, Clone, Copy)]
pub struct PolicyInput<'a> {
    /// The scene (gives the Oracle and the blur baseline their inputs).
    pub scene: &'a Scene,
    /// The small model's raw detections.
    pub small_dets: &'a ImageDetections,
    /// The ground-truth difficulty label, when known (Oracle only).
    pub label: Option<CaseKind>,
    /// Number of classes in the taxonomy (top-1 baseline normalisation).
    pub num_classes: usize,
    /// The edge↔cloud link's observed state when the frame arrived
    /// (effective bandwidth/RTT/loss under the session's [`simnet::LinkTrace`],
    /// or the static link's nominal point). `None` in batch evaluation,
    /// where no link semantics exist. Lets adaptive policies keep frames
    /// local through outages or congestion — see
    /// [`simnet::LinkState::nominal_transfer_time`].
    pub link: Option<simnet::LinkState>,
    /// Cloud queue depth the session last observed — admission probes
    /// report the instantaneous depth, answer headers the depth at their
    /// batch's formation (the congestion that answer actually queued
    /// behind); see the *Scheduling control plane* section of
    /// [`crate::CloudServer`]'s module docs. `None` before any cloud
    /// interaction and in batch evaluation. Lets adaptive policies back
    /// off when the cloud itself — not the link — is the bottleneck.
    pub cloud_queue: Option<usize>,
}

/// A per-frame offload strategy, decided in arrival order.
///
/// This is the extension point of the framework: the streaming runtime
/// ([`crate::EdgeSession`]) routes every frame through a
/// `Box<dyn OffloadPolicy>`, so downstream users can implement the trait for
/// their own types and plug them in without touching this crate. The
/// receiver is `&mut self` so stateful strategies (running quantiles,
/// token buckets, learned controllers) fit the same object-safe interface.
///
/// [`Policy`] implements the trait for every variant whose semantics are
/// well-defined one frame at a time; the batch-protocol quantile baselines
/// get a faithful streaming counterpart in [`QuantileStream`].
///
/// # Examples
///
/// ```
/// use smallbig_core::{Decision, OffloadPolicy, PolicyInput};
///
/// /// Upload whenever the small model saw nothing at all.
/// struct UploadOnEmpty;
///
/// impl OffloadPolicy for UploadOnEmpty {
///     fn decide(&mut self, input: &PolicyInput<'_>) -> Decision {
///         if input.small_dets.is_empty() {
///             Decision::Upload
///         } else {
///             Decision::Local
///         }
///     }
/// }
/// ```
pub trait OffloadPolicy: Send {
    /// Decides one frame, given everything the edge knows about it.
    fn decide(&mut self, input: &PolicyInput<'_>) -> Decision;

    /// Human-readable strategy name for reports. Return
    /// [`Cow::Borrowed`] for fixed names (no per-call allocation) and
    /// [`Cow::Owned`] when the name embeds parameters.
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("custom")
    }

    /// Optional difficulty score for the frame (higher = harder), asked
    /// right after [`decide`](Self::decide) returned
    /// [`Decision::Upload`]. The score rides the upload's wire header so
    /// cloud-side priority schedulers
    /// ([`DifficultyPriority`](crate::DifficultyPriority)) can serve the
    /// hardest cases first. The default (`None`) stamps `0` — FIFO among
    /// unscored frames. Must not draw randomness or the run stops
    /// replaying.
    fn difficulty(&mut self, _input: &PolicyInput<'_>) -> Option<f64> {
        None
    }

    /// Adopts a cloud-pushed [`CalibrationUpdate`](crate::CalibrationUpdate),
    /// returning `true` if the policy actually changed state. The runtime
    /// calls this *between* frames only (never mid-decision), so an
    /// implementation may replace itself wholesale. The default ignores
    /// updates — policies with no calibrated state (cloud-only, random…)
    /// are unaffected by the model-update loop.
    fn apply_calibration(&mut self, _update: &crate::CalibrationUpdate) -> bool {
        false
    }

    /// Snapshots the policy's calibrated state right before an update is
    /// applied, so a divergence trip can restore it via
    /// [`restore_calibration`](Self::restore_calibration). Policies that
    /// accept updates should return a non-empty snapshot or rollback
    /// becomes a no-op for them.
    fn calibration_snapshot(&self) -> crate::CalibrationSnapshot {
        crate::CalibrationSnapshot::default()
    }

    /// Restores a snapshot taken by
    /// [`calibration_snapshot`](Self::calibration_snapshot) (the rollback
    /// path). The default does nothing.
    fn restore_calibration(&mut self, _snapshot: &crate::CalibrationSnapshot) {}
}

/// The discriminator's scalar difficulty score (higher = harder): count
/// mismatch dominates, then estimated count, then small minimum area —
/// the ranking behind [`Policy::DifficultyQuantile`] and the score
/// uploaded frames carry for [`DifficultyPriority`](crate::DifficultyPriority).
fn semantic_difficulty(dets: &ImageDetections, t_conf: f64) -> f64 {
    let f = crate::SemanticFeatures::extract(dets, t_conf);
    let uncertain = f.estimated_count.saturating_sub(f.predicted_count) as f64;
    let min_area = f.estimated_min_area.unwrap_or(1.0);
    uncertain * 1e6 + f.estimated_count as f64 * 1e3 + (1.0 - min_area)
}

impl OffloadPolicy for DifficultCaseDiscriminator {
    fn decide(&mut self, input: &PolicyInput<'_>) -> Decision {
        match self.classify(input.small_dets) {
            CaseKind::Difficult => Decision::Upload,
            CaseKind::Easy => Decision::Local,
        }
    }

    fn name(&self) -> Cow<'static, str> {
        let t = self.thresholds();
        Cow::Owned(format!(
            "difficult-case (conf {:.2}, count {}, area {:.2})",
            t.conf, t.count, t.area
        ))
    }

    fn difficulty(&mut self, input: &PolicyInput<'_>) -> Option<f64> {
        Some(semantic_difficulty(
            input.small_dets,
            self.thresholds().conf,
        ))
    }

    fn apply_calibration(&mut self, update: &crate::CalibrationUpdate) -> bool {
        if self.thresholds() == update.thresholds {
            return false;
        }
        // The refit grid only emits in-range thresholds, so the
        // constructor's invariants hold by construction.
        *self = DifficultCaseDiscriminator::with_config(update.thresholds, self.config());
        true
    }

    fn calibration_snapshot(&self) -> crate::CalibrationSnapshot {
        crate::CalibrationSnapshot {
            thresholds: Some(self.thresholds()),
            quantile_scores: None,
        }
    }

    fn restore_calibration(&mut self, snapshot: &crate::CalibrationSnapshot) {
        if let Some(t) = snapshot.thresholds {
            *self = DifficultCaseDiscriminator::with_config(t, self.config());
        }
    }
}

/// Streaming [`OffloadPolicy`] for [`Policy`].
///
/// Per-image variants (`DifficultCase`, `CloudOnly`, `EdgeOnly`, `Oracle`)
/// decide exactly as [`Policy::decide_all`] does. `Random` derives its coin
/// flip from a per-scene hash of `(seed, scene.id)` so the stream is
/// deterministic and order-independent; it converges on `upload_fraction`
/// but does not reproduce `decide_all`'s exact batch shuffle.
///
/// # Panics
///
/// The quantile variants (`BlurQuantile`, `Top1Quantile`,
/// `DifficultyQuantile`) are defined by the paper as whole-test-set sorts
/// and have no exact per-frame meaning; calling `decide` on them panics
/// with a pointer to [`Policy::into_stream`], which converts them into the
/// online-quantile approximation instead.
impl OffloadPolicy for Policy {
    fn decide(&mut self, input: &PolicyInput<'_>) -> Decision {
        match self {
            Policy::DifficultCase(disc) => disc.decide(input),
            Policy::CloudOnly => Decision::Upload,
            Policy::EdgeOnly => Decision::Local,
            Policy::Random {
                upload_fraction,
                seed,
            } => {
                assert!((0.0..=1.0).contains(upload_fraction), "fraction in [0, 1]");
                if scene_hash_unit(*seed, input.scene.id) < *upload_fraction {
                    Decision::Upload
                } else {
                    Decision::Local
                }
            }
            Policy::Oracle => match input.label.expect("oracle policy requires labelled inputs") {
                CaseKind::Difficult => Decision::Upload,
                CaseKind::Easy => Decision::Local,
            },
            Policy::BlurQuantile { .. }
            | Policy::Top1Quantile { .. }
            | Policy::DifficultyQuantile { .. } => panic!(
                "{} is a batch-protocol policy with no exact streaming form; \
                 use Policy::into_stream() for the online-quantile version",
                Policy::name(self)
            ),
        }
    }

    fn name(&self) -> Cow<'static, str> {
        match self {
            Policy::CloudOnly => Cow::Borrowed("cloud-only"),
            Policy::EdgeOnly => Cow::Borrowed("edge-only"),
            Policy::Oracle => Cow::Borrowed("oracle"),
            other => Cow::Owned(Policy::name(other)),
        }
    }

    fn difficulty(&mut self, input: &PolicyInput<'_>) -> Option<f64> {
        match self {
            Policy::DifficultCase(disc) => disc.difficulty(input),
            _ => None,
        }
    }

    fn apply_calibration(&mut self, update: &crate::CalibrationUpdate) -> bool {
        match self {
            Policy::DifficultCase(disc) => disc.apply_calibration(update),
            _ => false,
        }
    }

    fn calibration_snapshot(&self) -> crate::CalibrationSnapshot {
        match self {
            Policy::DifficultCase(disc) => OffloadPolicy::calibration_snapshot(disc),
            _ => crate::CalibrationSnapshot::default(),
        }
    }

    fn restore_calibration(&mut self, snapshot: &crate::CalibrationSnapshot) {
        if let Policy::DifficultCase(disc) = self {
            disc.restore_calibration(snapshot);
        }
    }
}

/// SplitMix64-style hash of `(seed, id)` mapped to `[0, 1)`.
fn scene_hash_unit(seed: u64, id: u64) -> f64 {
    let mut z = seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An offload policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// The paper's difficult-case discriminator.
    DifficultCase(DifficultCaseDiscriminator),
    /// Upload everything (the traditional cloud-offload scheme).
    CloudOnly,
    /// Upload nothing.
    EdgeOnly,
    /// Upload a uniformly random fraction of the images.
    Random {
        /// Fraction of images to upload (0–1).
        upload_fraction: f64,
        /// RNG seed (decisions are deterministic given the seed).
        seed: u64,
    },
    /// Upload the blurriest `upload_fraction` by Brenner gradient.
    BlurQuantile {
        /// Fraction of images to upload (0–1).
        upload_fraction: f64,
        /// Resolution at which frames are rendered for scoring.
        render_size: (usize, usize),
    },
    /// Upload the `upload_fraction` with the lowest mean top-1 confidence.
    Top1Quantile {
        /// Fraction of images to upload (0–1).
        upload_fraction: f64,
    },
    /// Upload the `upload_fraction` most difficult-looking images, ranked by
    /// the discriminator's semantic features (count mismatch, estimated
    /// count, minimum area). This is the sweep behind the paper's Figs. 8–9:
    /// the knee of the mAP-vs-upload curve sits near 50 %.
    DifficultyQuantile {
        /// Fraction of images to upload (0–1).
        upload_fraction: f64,
        /// Noise-filter confidence threshold for feature extraction.
        t_conf: f64,
    },
    /// Upload exactly the images whose true label is difficult.
    Oracle,
}

impl Policy {
    /// Human-readable policy name for reports.
    pub fn name(&self) -> String {
        match self {
            Policy::DifficultCase(d) => {
                let t = d.thresholds();
                format!(
                    "difficult-case (conf {:.2}, count {}, area {:.2})",
                    t.conf, t.count, t.area
                )
            }
            Policy::CloudOnly => "cloud-only".to_string(),
            Policy::EdgeOnly => "edge-only".to_string(),
            Policy::Random {
                upload_fraction, ..
            } => {
                format!("random {:.0}%", upload_fraction * 100.0)
            }
            Policy::BlurQuantile {
                upload_fraction, ..
            } => {
                format!("blurred {:.0}% (Brenner)", upload_fraction * 100.0)
            }
            Policy::Top1Quantile { upload_fraction } => {
                format!("top-1 confidence {:.0}%", upload_fraction * 100.0)
            }
            Policy::DifficultyQuantile {
                upload_fraction, ..
            } => {
                format!("difficulty-ranked {:.0}%", upload_fraction * 100.0)
            }
            Policy::Oracle => "oracle".to_string(),
        }
    }

    /// Decides the whole batch at once.
    ///
    /// Quantile policies (random / blur / top-1) reproduce the paper's
    /// protocol of sorting the entire test set and uploading the worst
    /// fraction; the discriminator and the extremes decide per image.
    ///
    /// # Panics
    ///
    /// Panics if a quantile fraction is outside `[0, 1]`, or if
    /// [`Policy::Oracle`] is used on inputs without labels.
    pub fn decide_all(&self, inputs: &[PolicyInput<'_>]) -> Vec<Decision> {
        match self {
            Policy::DifficultCase(disc) => inputs
                .iter()
                .map(|ctx| match disc.classify(ctx.small_dets) {
                    CaseKind::Difficult => Decision::Upload,
                    CaseKind::Easy => Decision::Local,
                })
                .collect(),
            Policy::CloudOnly => vec![Decision::Upload; inputs.len()],
            Policy::EdgeOnly => vec![Decision::Local; inputs.len()],
            Policy::Random {
                upload_fraction,
                seed,
            } => {
                assert!((0.0..=1.0).contains(upload_fraction), "fraction in [0, 1]");
                let mut order: Vec<usize> = (0..inputs.len()).collect();
                let mut rng = StdRng::seed_from_u64(*seed);
                order.shuffle(&mut rng);
                let k = quantile_count(inputs.len(), *upload_fraction);
                let mut out = vec![Decision::Local; inputs.len()];
                for &i in order.iter().take(k) {
                    out[i] = Decision::Upload;
                }
                out
            }
            Policy::BlurQuantile {
                upload_fraction,
                render_size,
            } => {
                assert!((0.0..=1.0).contains(upload_fraction), "fraction in [0, 1]");
                let scores: Vec<f64> = inputs
                    .iter()
                    .map(|ctx| {
                        let frame = render(&ctx.scene.render_spec(render_size.0, render_size.1));
                        brenner_gradient(&frame)
                    })
                    .collect();
                // Blurriest = lowest Brenner score; upload those.
                upload_lowest(&scores, *upload_fraction)
            }
            Policy::Top1Quantile { upload_fraction } => {
                assert!((0.0..=1.0).contains(upload_fraction), "fraction in [0, 1]");
                let scores: Vec<f64> = inputs
                    .iter()
                    .map(|ctx| ctx.small_dets.mean_top1_score(ctx.num_classes))
                    .collect();
                upload_lowest(&scores, *upload_fraction)
            }
            Policy::DifficultyQuantile {
                upload_fraction,
                t_conf,
            } => {
                assert!((0.0..=1.0).contains(upload_fraction), "fraction in [0, 1]");
                let scores: Vec<f64> = inputs
                    .iter()
                    // Higher = more difficult; negate for upload_lowest.
                    .map(|ctx| -semantic_difficulty(ctx.small_dets, *t_conf))
                    .collect();
                upload_lowest(&scores, *upload_fraction)
            }
            Policy::Oracle => inputs
                .iter()
                .map(
                    |ctx| match ctx.label.expect("oracle policy requires labelled inputs") {
                        CaseKind::Difficult => Decision::Upload,
                        CaseKind::Easy => Decision::Local,
                    },
                )
                .collect(),
        }
    }
}

impl Policy {
    /// Converts the policy into a boxed streaming [`OffloadPolicy`].
    ///
    /// Per-image variants stream as themselves. The quantile baselines
    /// become a [`QuantileStream`] that ranks each frame against every
    /// score seen so far — the online analogue of the paper's
    /// sort-the-whole-test-set protocol.
    pub fn into_stream(self) -> Box<dyn OffloadPolicy> {
        match self {
            Policy::BlurQuantile {
                upload_fraction,
                render_size,
            } => Box::new(QuantileStream::new(
                ScoreKind::Blur { render_size },
                upload_fraction,
            )),
            Policy::Top1Quantile { upload_fraction } => {
                Box::new(QuantileStream::new(ScoreKind::Top1, upload_fraction))
            }
            Policy::DifficultyQuantile {
                upload_fraction,
                t_conf,
            } => Box::new(QuantileStream::new(
                ScoreKind::Difficulty { t_conf },
                upload_fraction,
            )),
            other => Box::new(other),
        }
    }
}

/// How a [`QuantileStream`] scores a frame (lower = more worth uploading).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreKind {
    /// Brenner gradient of the rendered frame (blurry frames score low).
    Blur {
        /// Resolution at which frames are rendered for scoring.
        render_size: (usize, usize),
    },
    /// Mean per-class top-1 confidence of the small model's output.
    Top1,
    /// Negated discriminator difficulty features (difficult frames score low).
    Difficulty {
        /// Noise-filter confidence threshold for feature extraction.
        t_conf: f64,
    },
}

/// Online-quantile adapter turning a batch quantile baseline into a
/// streaming [`OffloadPolicy`].
///
/// Each frame is scored, inserted into the sorted history, and uploaded iff
/// its rank falls within the lowest `upload_fraction` of all scores seen so
/// far (rounded — with one score seen, the first frame uploads iff
/// `upload_fraction >= 0.5`). Early frames decide against little history;
/// as the stream grows, the decision converges on the batch quantile.
/// Insertion is `O(n)` per frame, which is fine at simulation scale.
///
/// # Examples
///
/// ```
/// use smallbig_core::{OffloadPolicy, Policy};
///
/// let mut policy = Policy::Top1Quantile { upload_fraction: 0.5 }.into_stream();
/// assert!(policy.name().contains("streaming"));
/// ```
#[derive(Debug, Clone)]
pub struct QuantileStream {
    kind: ScoreKind,
    upload_fraction: f64,
    sorted_scores: Vec<f64>,
    /// Score of the most recently decided frame. `difficulty` is asked
    /// right after `decide` on the same frame, and blur scoring re-renders
    /// the whole frame — so it reuses this instead of recomputing.
    last_score: Option<f64>,
}

impl QuantileStream {
    /// Creates a streaming quantile policy.
    ///
    /// # Panics
    ///
    /// Panics if `upload_fraction` is outside `[0, 1]`.
    pub fn new(kind: ScoreKind, upload_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&upload_fraction), "fraction in [0, 1]");
        QuantileStream {
            kind,
            upload_fraction,
            sorted_scores: Vec::new(),
            last_score: None,
        }
    }

    /// Number of frames scored so far.
    pub fn frames_seen(&self) -> usize {
        self.sorted_scores.len()
    }

    fn score(&self, input: &PolicyInput<'_>) -> f64 {
        match self.kind {
            ScoreKind::Blur { render_size } => {
                let frame = render(&input.scene.render_spec(render_size.0, render_size.1));
                brenner_gradient(&frame)
            }
            ScoreKind::Top1 => input.small_dets.mean_top1_score(input.num_classes),
            ScoreKind::Difficulty { t_conf } => -semantic_difficulty(input.small_dets, t_conf),
        }
    }
}

impl OffloadPolicy for QuantileStream {
    fn decide(&mut self, input: &PolicyInput<'_>) -> Decision {
        let score = self.score(input);
        self.last_score = Some(score);
        let rank = self.sorted_scores.partition_point(|s| *s < score);
        self.sorted_scores.insert(rank, score);
        let k = quantile_count(self.sorted_scores.len(), self.upload_fraction);
        if rank < k {
            Decision::Upload
        } else {
            Decision::Local
        }
    }

    fn name(&self) -> Cow<'static, str> {
        let what = match self.kind {
            ScoreKind::Blur { .. } => "blurred",
            ScoreKind::Top1 => "top-1 confidence",
            ScoreKind::Difficulty { .. } => "difficulty-ranked",
        };
        Cow::Owned(format!(
            "streaming {what} {:.0}%",
            self.upload_fraction * 100.0
        ))
    }

    fn difficulty(&mut self, input: &PolicyInput<'_>) -> Option<f64> {
        // A quantile stream scores frames with "lower = more worth
        // uploading"; negated, that is a difficulty (higher = harder).
        // `decide` just scored this frame, so reuse its score rather than
        // re-render (blur) or re-extract features.
        Some(-self.last_score.unwrap_or_else(|| self.score(input)))
    }

    fn apply_calibration(&mut self, update: &crate::CalibrationUpdate) -> bool {
        // The artifact carries the cloud-observed difficulty scores sorted
        // ascending (higher = harder); this stream ranks by "lower = more
        // worth uploading", so negate and reverse to keep the history
        // ascending in the stream's own convention.
        if update.quantile_scores.is_empty() {
            return false;
        }
        self.sorted_scores = update.quantile_scores.iter().rev().map(|d| -d).collect();
        true
    }

    fn calibration_snapshot(&self) -> crate::CalibrationSnapshot {
        crate::CalibrationSnapshot {
            thresholds: None,
            quantile_scores: Some(self.sorted_scores.iter().rev().map(|s| -s).collect()),
        }
    }

    fn restore_calibration(&mut self, snapshot: &crate::CalibrationSnapshot) {
        if let Some(scores) = &snapshot.quantile_scores {
            self.sorted_scores = scores.iter().rev().map(|d| -d).collect();
        }
    }
}

fn quantile_count(n: usize, fraction: f64) -> usize {
    ((n as f64 * fraction).round() as usize).min(n)
}

/// Uploads the images with the `fraction` lowest scores.
fn upload_lowest(scores: &[f64], fraction: f64) -> Vec<Decision> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let k = quantile_count(scores.len(), fraction);
    let mut out = vec![Decision::Local; scores.len()];
    for &i in order.iter().take(k) {
        out[i] = Decision::Upload;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::DatasetProfile;
    use modelzoo::{Detector, ModelKind, SimDetector};

    fn inputs_fixture(n: u64) -> (Vec<Scene>, Vec<ImageDetections>) {
        let profile = DatasetProfile::voc();
        let scenes: Vec<Scene> = (0..n).map(|id| Scene::sample(&profile, 21, id)).collect();
        let small = SimDetector::new(ModelKind::VggLiteSsd, datagen::SplitId::Voc07, 20);
        let dets: Vec<ImageDetections> = scenes.iter().map(|s| small.detect(s)).collect();
        (scenes, dets)
    }

    fn make_inputs<'a>(scenes: &'a [Scene], dets: &'a [ImageDetections]) -> Vec<PolicyInput<'a>> {
        scenes
            .iter()
            .zip(dets)
            .map(|(scene, small_dets)| PolicyInput {
                scene,
                small_dets,
                label: Some(if scene.num_objects() > 2 {
                    CaseKind::Difficult
                } else {
                    CaseKind::Easy
                }),
                num_classes: 20,
                link: None,
                cloud_queue: None,
            })
            .collect()
    }

    #[test]
    fn extremes() {
        let (scenes, dets) = inputs_fixture(20);
        let inputs = make_inputs(&scenes, &dets);
        assert!(Policy::CloudOnly
            .decide_all(&inputs)
            .iter()
            .all(|d| d.is_upload()));
        assert!(Policy::EdgeOnly
            .decide_all(&inputs)
            .iter()
            .all(|d| !d.is_upload()));
    }

    #[test]
    fn random_hits_requested_fraction_and_is_deterministic() {
        let (scenes, dets) = inputs_fixture(100);
        let inputs = make_inputs(&scenes, &dets);
        let p = Policy::Random {
            upload_fraction: 0.5,
            seed: 3,
        };
        let a = p.decide_all(&inputs);
        let b = p.decide_all(&inputs);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|d| d.is_upload()).count(), 50);
        let p2 = Policy::Random {
            upload_fraction: 0.5,
            seed: 4,
        };
        assert_ne!(p2.decide_all(&inputs), a);
    }

    #[test]
    fn quantile_policies_hit_fraction_exactly() {
        let (scenes, dets) = inputs_fixture(40);
        let inputs = make_inputs(&scenes, &dets);
        for p in [
            Policy::BlurQuantile {
                upload_fraction: 0.5,
                render_size: (64, 48),
            },
            Policy::Top1Quantile {
                upload_fraction: 0.5,
            },
        ] {
            let d = p.decide_all(&inputs);
            assert_eq!(
                d.iter().filter(|x| x.is_upload()).count(),
                20,
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn blur_uploads_blurriest() {
        let (scenes, dets) = inputs_fixture(60);
        let inputs = make_inputs(&scenes, &dets);
        let p = Policy::BlurQuantile {
            upload_fraction: 0.5,
            render_size: (64, 48),
        };
        let decisions = p.decide_all(&inputs);
        let blur_of = |i: usize| scenes[i].camera_blur;
        let uploaded: Vec<f64> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_upload())
            .map(|(i, _)| blur_of(i))
            .collect();
        let kept: Vec<f64> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_upload())
            .map(|(i, _)| blur_of(i))
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&uploaded) > mean(&kept),
            "uploaded frames should be blurrier on average"
        );
    }

    #[test]
    fn oracle_follows_labels() {
        let (scenes, dets) = inputs_fixture(30);
        let inputs = make_inputs(&scenes, &dets);
        let d = Policy::Oracle.decide_all(&inputs);
        for (ctx, dec) in inputs.iter().zip(&d) {
            assert_eq!(ctx.label.unwrap().is_difficult(), dec.is_upload());
        }
    }

    #[test]
    fn discriminator_policy_routes_by_classification() {
        let (scenes, dets) = inputs_fixture(50);
        let inputs = make_inputs(&scenes, &dets);
        let disc = DifficultCaseDiscriminator::default();
        let p = Policy::DifficultCase(disc.clone());
        let decisions = p.decide_all(&inputs);
        for (ctx, dec) in inputs.iter().zip(&decisions) {
            assert_eq!(
                disc.classify(ctx.small_dets).is_difficult(),
                dec.is_upload()
            );
        }
    }

    #[test]
    fn names_are_informative() {
        assert!(Policy::CloudOnly.name().contains("cloud"));
        assert!(Policy::Random {
            upload_fraction: 0.5,
            seed: 0
        }
        .name()
        .contains("50"));
        assert!(Policy::DifficultCase(DifficultCaseDiscriminator::default())
            .name()
            .contains("0.31"));
    }

    #[test]
    #[should_panic(expected = "labelled")]
    fn oracle_without_labels_panics() {
        let (scenes, dets) = inputs_fixture(3);
        let mut inputs = make_inputs(&scenes, &dets);
        inputs[0].label = None;
        let _ = Policy::Oracle.decide_all(&inputs);
    }
}
