//! Persistence for calibrated artefacts.
//!
//! A deployed edge device calibrates once (or receives thresholds from the
//! cloud) and then reloads them at boot; this module provides the JSON
//! round-trip for [`Thresholds`], [`Calibration`] and the versioned
//! [`CalibrationUpdate`] artifacts the model-update loop produces. Update
//! artifacts carry a format version ([`crate::UPDATE_FORMAT`]): loading one
//! written by a *newer* build is a typed error
//! ([`PersistError::UnsupportedVersion`]), never a panic, so a fleet
//! mid-upgrade degrades gracefully.

use crate::{Calibration, CalibrationUpdate, Thresholds, UPDATE_FORMAT};
use std::fmt;
use std::io;
use std::path::Path;

/// Errors from loading persisted artefacts.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(io::Error),
    /// The file was not valid JSON for the target type.
    Parse(serde_json::Error),
    /// The loaded thresholds violate their invariants.
    Invalid(String),
    /// The artifact's format version is newer than this build understands.
    UnsupportedVersion {
        /// Format version found in the file.
        found: u32,
        /// Newest format version this build can load.
        supported: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persisted artefact i/o error: {e}"),
            PersistError::Parse(e) => write!(f, "persisted artefact is malformed: {e}"),
            PersistError::Invalid(m) => write!(f, "persisted thresholds invalid: {m}"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "persisted artefact format {found} is newer than this build supports \
                 (up to {supported})"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Parse(e) => Some(e),
            PersistError::Invalid(_) => None,
            PersistError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn validate(t: &Thresholds) -> Result<(), PersistError> {
    if !(t.conf > 0.0 && t.conf <= crate::PREDICTION_THRESHOLD) {
        return Err(PersistError::Invalid(format!(
            "confidence threshold {} outside (0, 0.5]",
            t.conf
        )));
    }
    if !(0.0..=1.0).contains(&t.area) {
        return Err(PersistError::Invalid(format!(
            "area threshold {} outside [0, 1]",
            t.area
        )));
    }
    Ok(())
}

impl Thresholds {
    /// Writes the thresholds to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_json<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let json = serde_json::to_string_pretty(self).expect("thresholds serialize");
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads thresholds from a JSON file, validating invariants.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on i/o failure, malformed JSON, or
    /// out-of-range values.
    ///
    /// # Examples
    ///
    /// ```
    /// use smallbig_core::Thresholds;
    ///
    /// let dir = std::env::temp_dir().join("smallbig-doc-thresholds.json");
    /// Thresholds::paper().save_json(&dir).unwrap();
    /// let loaded = Thresholds::load_json(&dir).unwrap();
    /// assert_eq!(loaded, Thresholds::paper());
    /// ```
    pub fn load_json<P: AsRef<Path>>(path: P) -> Result<Thresholds, PersistError> {
        let data = std::fs::read_to_string(path)?;
        let t: Thresholds = serde_json::from_str(&data).map_err(PersistError::Parse)?;
        validate(&t)?;
        Ok(t)
    }
}

impl Calibration {
    /// Writes the full calibration record (thresholds + training stats).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_json<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let json = serde_json::to_string_pretty(self).expect("calibration serializes");
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a calibration record.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on i/o failure, malformed JSON, or invalid
    /// thresholds.
    pub fn load_json<P: AsRef<Path>>(path: P) -> Result<Calibration, PersistError> {
        let data = std::fs::read_to_string(path)?;
        let c: Calibration = serde_json::from_str(&data).map_err(PersistError::Parse)?;
        validate(&c.thresholds)?;
        Ok(c)
    }
}

impl CalibrationUpdate {
    /// Writes the versioned update artifact to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_json<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        let json = serde_json::to_string_pretty(self).expect("update artifact serializes");
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a versioned update artifact, gating on its format version and
    /// validating the thresholds it carries.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on i/o failure, malformed JSON, a format
    /// newer than [`UPDATE_FORMAT`] ([`PersistError::UnsupportedVersion`]),
    /// or out-of-range values.
    ///
    /// # Examples
    ///
    /// ```
    /// use smallbig_core::{CalibrationUpdate, Thresholds};
    ///
    /// let path = std::env::temp_dir().join("smallbig-doc-update.json");
    /// let artifact = CalibrationUpdate::factory(Thresholds::paper());
    /// artifact.save_json(&path).unwrap();
    /// assert_eq!(CalibrationUpdate::load_json(&path).unwrap(), artifact);
    /// ```
    pub fn load_json<P: AsRef<Path>>(path: P) -> Result<CalibrationUpdate, PersistError> {
        let data = std::fs::read_to_string(path)?;
        let u: CalibrationUpdate = serde_json::from_str(&data).map_err(PersistError::Parse)?;
        if u.format > UPDATE_FORMAT {
            return Err(PersistError::UnsupportedVersion {
                found: u.format,
                supported: UPDATE_FORMAT,
            });
        }
        validate(&u.thresholds)?;
        if u.quantile_scores.iter().any(|s| !s.is_finite()) {
            return Err(PersistError::Invalid(
                "quantile scores must be finite".to_string(),
            ));
        }
        Ok(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smallbig-test-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn thresholds_round_trip() {
        let path = tmp("thr");
        let t = Thresholds {
            conf: 0.22,
            count: 3,
            area: 0.17,
        };
        t.save_json(&path).unwrap();
        assert_eq!(Thresholds::load_json(&path).unwrap(), t);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        let path = tmp("bad");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            Thresholds::load_json(&path),
            Err(PersistError::Parse(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn invalid_values_rejected() {
        let path = tmp("inv");
        std::fs::write(&path, r#"{"conf": 0.9, "count": 2, "area": 0.31}"#).unwrap();
        let err = Thresholds::load_json(&path).unwrap_err();
        assert!(matches!(err, PersistError::Invalid(_)));
        assert!(format!("{err}").contains("confidence"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Thresholds::load_json("/nonexistent/nope.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn update_artifact_round_trips() {
        let path = tmp("upd");
        let u = CalibrationUpdate {
            format: UPDATE_FORMAT,
            version: 5,
            epoch: 12,
            thresholds: Thresholds {
                conf: 0.2,
                count: 3,
                area: 0.07,
            },
            quantile_scores: vec![0.1, 0.4, 0.9],
            examples: 40,
            accuracy: 0.925,
            holdout: 16,
            divergence: 0.35,
        };
        u.save_json(&path).unwrap();
        assert_eq!(CalibrationUpdate::load_json(&path).unwrap(), u);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn future_format_is_typed_error_not_panic() {
        let path = tmp("upd-future");
        let mut u = CalibrationUpdate::factory(Thresholds::paper());
        u.format = UPDATE_FORMAT + 1;
        u.save_json(&path).unwrap();
        let err = CalibrationUpdate::load_json(&path).unwrap_err();
        match err {
            PersistError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, UPDATE_FORMAT + 1);
                assert_eq!(supported, UPDATE_FORMAT);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        assert!(format!("{err}").contains("newer than this build"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn update_artifact_validates_contents() {
        let path = tmp("upd-inv");
        let mut u = CalibrationUpdate::factory(Thresholds::paper());
        u.thresholds.conf = 0.9;
        u.save_json(&path).unwrap();
        assert!(matches!(
            CalibrationUpdate::load_json(&path),
            Err(PersistError::Invalid(_))
        ));
        std::fs::remove_file(path).ok();
    }
}
