//! Batch evaluation of the small-big system over a dataset.
//!
//! Computes everything the paper's tables report: per-model mAP, end-to-end
//! mAP under a policy, detected-object totals, and the upload ratio.

use crate::par::ordered_map;
use crate::{CaseKind, Policy, PolicyInput, PREDICTION_THRESHOLD};
use datagen::Dataset;
use detcore::{
    count_detected_with, ApProtocol, CountScratch, CountingConfig, DatasetCounter,
    ImageContribution, ImageDetections, MapEvaluator,
};
use modelzoo::Detector;
use serde::{Deserialize, Serialize};

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// AP interpolation protocol (the paper uses VOC 11-point).
    pub ap_protocol: ApProtocol,
    /// Counting thresholds for the detected-objects metric.
    pub counting: CountingConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            ap_protocol: ApProtocol::Voc07ElevenPoint,
            counting: CountingConfig::default(),
        }
    }
}

/// Everything one table row needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Big model mAP (%): "upload everything" quality.
    pub big_map_pct: f64,
    /// Small model mAP (%): "edge-only" quality.
    pub small_map_pct: f64,
    /// End-to-end mAP (%) under the policy.
    pub e2e_map_pct: f64,
    /// Objects the big model detects on the whole test set.
    pub big_detected: usize,
    /// Objects the small model detects.
    pub small_detected: usize,
    /// Objects the end-to-end system detects.
    pub e2e_detected: usize,
    /// Ground-truth objects in the test set.
    pub total_gt: usize,
    /// Fraction of images uploaded to the cloud.
    pub upload_ratio: f64,
    /// Number of test images.
    pub num_images: usize,
}

impl EvalOutcome {
    /// End-to-end mAP relative to the big model, in percent
    /// (the paper's headline 91.22–92.52 % band).
    pub fn e2e_map_vs_big_pct(&self) -> f64 {
        if self.big_map_pct == 0.0 {
            0.0
        } else {
            self.e2e_map_pct / self.big_map_pct * 100.0
        }
    }

    /// End-to-end detected objects relative to the big model, in percent
    /// (the paper's "End-to-end/Big model" columns, ~94 %).
    pub fn e2e_detected_vs_big_pct(&self) -> f64 {
        if self.big_detected == 0 {
            0.0
        } else {
            self.e2e_detected as f64 / self.big_detected as f64 * 100.0
        }
    }
}

/// Evaluates a (small, big, policy) triple over a test dataset.
///
/// Detections are computed once per model per image; the end-to-end result
/// re-uses the big model's output on uploaded images and the small model's on
/// local ones, exactly like the deployed system (big model outputs are
/// identical whether computed in the cloud or here, since detectors are
/// deterministic).
///
/// The detection pass fans out across images (see [`crate::par`]); results
/// merge back in dataset order and all metric accumulation stays
/// sequential, so the outcome is bit-identical to a single-threaded run.
///
/// # Examples
///
/// ```
/// use datagen::{Dataset, DatasetProfile, SplitId};
/// use modelzoo::{ModelKind, SimDetector};
/// use smallbig_core::{evaluate, EvalConfig, Policy};
///
/// let test = Dataset::generate("demo", &DatasetProfile::voc(), 50, 3);
/// let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
/// let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
/// let outcome = evaluate(&test, &small, &big, &Policy::CloudOnly, &EvalConfig::default());
/// assert_eq!(outcome.upload_ratio, 1.0);
/// assert!((outcome.e2e_map_pct - outcome.big_map_pct).abs() < 1e-9);
/// ```
pub fn evaluate(
    test: &Dataset,
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
    policy: &Policy,
    config: &EvalConfig,
) -> EvalOutcome {
    evaluate_detections(test, &detect_all(test, small, big), policy, config)
}

/// Runs both models over every scene of a dataset, fanning images out
/// across the harness workers (see [`crate::par`]) and returning
/// `(small, big)` detection pairs in dataset order.
///
/// Detectors are deterministic, so callers that need the same detections
/// more than once — [`evaluate_detections`] under several policies,
/// [`discriminator_stats_on`] next to an evaluation — detect once and
/// share the result instead of re-running the models.
///
/// Each image's results are retained, so one output buffer per
/// (model, image) is inherent and plain [`Detector::detect`] is the right
/// call here — for [`modelzoo::SimDetector`] it is a thin wrapper over the
/// allocation-free `detect_into` fast path, so the detection loop itself
/// performs no allocation beyond that one retained buffer. Streaming
/// consumers that *can* reuse a buffer across frames call
/// [`Detector::detect_into`] directly.
pub fn detect_all(
    test: &Dataset,
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
) -> Vec<(ImageDetections, ImageDetections)> {
    let scenes = test.scenes();
    ordered_map(scenes.len(), |i| {
        (small.detect(&scenes[i]), big.detect(&scenes[i]))
    })
}

/// [`evaluate`] over detections precomputed with [`detect_all`].
///
/// # Panics
///
/// Panics if the dataset is empty or `results` does not line up with it.
pub fn evaluate_detections(
    test: &Dataset,
    results: &[(ImageDetections, ImageDetections)],
    policy: &Policy,
    config: &EvalConfig,
) -> EvalOutcome {
    assert!(!test.is_empty(), "cannot evaluate an empty dataset");
    let num_classes = test.taxonomy().len();
    let scenes = test.scenes();
    assert_eq!(
        scenes.len(),
        results.len(),
        "one detection pair per scene required"
    );

    // Labels for the oracle policy (cheap: counts are already available).
    let labels: Vec<CaseKind> = results
        .iter()
        .map(|(s, b)| {
            if b.count_above(PREDICTION_THRESHOLD) > s.count_above(PREDICTION_THRESHOLD) {
                CaseKind::Difficult
            } else {
                CaseKind::Easy
            }
        })
        .collect();

    let inputs: Vec<PolicyInput<'_>> = scenes
        .iter()
        .zip(results)
        .zip(&labels)
        .map(|((scene, (small_dets, _)), label)| PolicyInput {
            scene,
            small_dets,
            label: Some(*label),
            num_classes,
            link: None,
            cloud_queue: None,
        })
        .collect();
    let decisions = policy.decide_all(&inputs);

    let mut small_map = MapEvaluator::new(num_classes, config.ap_protocol);
    let mut big_map = MapEvaluator::new(num_classes, config.ap_protocol);
    let mut e2e_map = MapEvaluator::new(num_classes, config.ap_protocol);
    let mut small_count = DatasetCounter::new();
    let mut big_count = DatasetCounter::new();
    let mut e2e_count = DatasetCounter::new();
    let mut count_scratch = CountScratch::new();
    let mut small_contrib = ImageContribution::new();
    let mut big_contrib = ImageContribution::new();
    let mut gts = Vec::new();
    let mut uploads = 0usize;

    for ((scene, (small_dets, big_dets)), decision) in scenes.iter().zip(results).zip(&decisions) {
        scene.ground_truths_into(&mut gts);
        // Matching is deterministic, so the end-to-end evaluators replay
        // whichever per-model result the decision routes to instead of
        // matching / counting the routed image a third time.
        small_map.add_image_recording(small_dets, &gts, &mut small_contrib);
        big_map.add_image_recording(big_dets, &gts, &mut big_contrib);
        let small_c = count_detected_with(small_dets, &gts, &config.counting, &mut count_scratch);
        let big_c = count_detected_with(big_dets, &gts, &config.counting, &mut count_scratch);
        small_count.add(small_c);
        big_count.add(big_c);
        if decision.is_upload() {
            uploads += 1;
            e2e_map.replay_contribution(&big_map, &big_contrib);
            e2e_count.add(big_c);
        } else {
            e2e_map.replay_contribution(&small_map, &small_contrib);
            e2e_count.add(small_c);
        }
    }

    EvalOutcome {
        big_map_pct: big_map.evaluate().map_percent(),
        small_map_pct: small_map.evaluate().map_percent(),
        e2e_map_pct: e2e_map.evaluate().map_percent(),
        big_detected: big_count.total_detected(),
        small_detected: small_count.total_detected(),
        e2e_detected: e2e_count.total_detected(),
        total_gt: big_count.total_gt(),
        upload_ratio: uploads as f64 / test.len() as f64,
        num_images: test.len(),
    }
}

/// Evaluates a streaming [`crate::OffloadPolicy`] over a test dataset,
/// deciding frame-by-frame in dataset order.
///
/// The batch [`evaluate`] hands the policy the whole test set at once (the
/// paper's protocol); this variant feeds one frame at a time, which is what
/// a deployed [`crate::EdgeSession`] does. For per-image policies
/// (discriminator, extremes) both agree exactly; for quantile baselines the
/// streaming form converges on the batch quantile as frames accumulate.
///
/// # Examples
///
/// ```
/// use datagen::{Dataset, DatasetProfile, SplitId};
/// use modelzoo::{ModelKind, SimDetector};
/// use smallbig_core::{evaluate_streaming, DifficultCaseDiscriminator, EvalConfig};
///
/// let test = Dataset::generate("demo", &DatasetProfile::voc(), 50, 3);
/// let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
/// let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
/// let mut disc = DifficultCaseDiscriminator::default();
/// let outcome =
///     evaluate_streaming(&test, &small, &big, &mut disc, &EvalConfig::default());
/// assert!(outcome.upload_ratio >= 0.0 && outcome.upload_ratio <= 1.0);
/// ```
pub fn evaluate_streaming(
    test: &Dataset,
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
    policy: &mut dyn crate::OffloadPolicy,
    config: &EvalConfig,
) -> EvalOutcome {
    assert!(!test.is_empty(), "cannot evaluate an empty dataset");
    let num_classes = test.taxonomy().len();
    let scenes = test.scenes();

    // Detectors are deterministic, so the per-frame detection work can fan
    // out ahead of the strictly-sequential policy loop below without
    // changing a single decision.
    let results = detect_all(test, small, big);

    let mut small_map = MapEvaluator::new(num_classes, config.ap_protocol);
    let mut big_map = MapEvaluator::new(num_classes, config.ap_protocol);
    let mut e2e_map = MapEvaluator::new(num_classes, config.ap_protocol);
    let mut small_count = DatasetCounter::new();
    let mut big_count = DatasetCounter::new();
    let mut e2e_count = DatasetCounter::new();
    let mut count_scratch = CountScratch::new();
    let mut small_contrib = ImageContribution::new();
    let mut big_contrib = ImageContribution::new();
    let mut gts = Vec::new();
    let mut uploads = 0usize;

    for (scene, (small_dets, big_dets)) in scenes.iter().zip(&results) {
        scene.ground_truths_into(&mut gts);
        // Same label rule as the batch path (both models already ran here),
        // so Policy::Oracle works identically in streaming form.
        let label = if big_dets.count_above(PREDICTION_THRESHOLD)
            > small_dets.count_above(PREDICTION_THRESHOLD)
        {
            CaseKind::Difficult
        } else {
            CaseKind::Easy
        };
        let decision = policy.decide(&PolicyInput {
            scene,
            small_dets,
            label: Some(label),
            num_classes,
            link: None,
            cloud_queue: None,
        });
        small_map.add_image_recording(small_dets, &gts, &mut small_contrib);
        big_map.add_image_recording(big_dets, &gts, &mut big_contrib);
        let small_c = count_detected_with(small_dets, &gts, &config.counting, &mut count_scratch);
        let big_c = count_detected_with(big_dets, &gts, &config.counting, &mut count_scratch);
        small_count.add(small_c);
        big_count.add(big_c);
        if decision.is_upload() {
            uploads += 1;
            e2e_map.replay_contribution(&big_map, &big_contrib);
            e2e_count.add(big_c);
        } else {
            e2e_map.replay_contribution(&small_map, &small_contrib);
            e2e_count.add(small_c);
        }
    }

    EvalOutcome {
        big_map_pct: big_map.evaluate().map_percent(),
        small_map_pct: small_map.evaluate().map_percent(),
        e2e_map_pct: e2e_map.evaluate().map_percent(),
        big_detected: big_count.total_detected(),
        small_detected: small_count.total_detected(),
        e2e_detected: e2e_count.total_detected(),
        total_gt: big_count.total_gt(),
        upload_ratio: uploads as f64 / test.len() as f64,
        num_images: test.len(),
    }
}

/// Labels the dataset and reports discriminator quality on it
/// (used for the paper's Table I test row).
pub fn discriminator_test_stats(
    test: &Dataset,
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
    disc: &crate::DifficultCaseDiscriminator,
) -> crate::BinaryStats {
    discriminator_stats_on(test, &detect_all(test, small, big), disc)
}

/// [`discriminator_test_stats`] over detections precomputed with
/// [`detect_all`] — the experiment driver shares one detection pass between
/// this and [`evaluate_detections`].
///
/// # Panics
///
/// Panics if `results` does not line up with the dataset.
pub fn discriminator_stats_on(
    test: &Dataset,
    results: &[(ImageDetections, ImageDetections)],
    disc: &crate::DifficultCaseDiscriminator,
) -> crate::BinaryStats {
    let scenes = test.scenes();
    assert_eq!(
        scenes.len(),
        results.len(),
        "one detection pair per scene required"
    );
    let t_conf = disc.thresholds().conf;
    let pairs = scenes.iter().zip(results).map(|(scene, (s, b))| {
        let ex = crate::label_scene_with(scene, s, b, t_conf);
        (disc.classify_features(&ex.features), ex.label)
    });
    crate::BinaryStats::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DifficultCaseDiscriminator, Thresholds};
    use datagen::{DatasetProfile, SplitId};
    use modelzoo::{ModelKind, SimDetector};

    fn fixture() -> (Dataset, SimDetector, SimDetector) {
        let test = Dataset::generate("t", &DatasetProfile::voc(), 250, 17);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        (test, small, big)
    }

    #[test]
    fn cloud_only_equals_big_edge_only_equals_small() {
        let (test, small, big) = fixture();
        let cfg = EvalConfig::default();
        let cloud = evaluate(&test, &small, &big, &Policy::CloudOnly, &cfg);
        assert_eq!(cloud.upload_ratio, 1.0);
        assert!((cloud.e2e_map_pct - cloud.big_map_pct).abs() < 1e-9);
        assert_eq!(cloud.e2e_detected, cloud.big_detected);
        let edge = evaluate(&test, &small, &big, &Policy::EdgeOnly, &cfg);
        assert_eq!(edge.upload_ratio, 0.0);
        assert!((edge.e2e_map_pct - edge.small_map_pct).abs() < 1e-9);
        assert_eq!(edge.e2e_detected, edge.small_detected);
    }

    #[test]
    fn big_beats_small() {
        let (test, small, big) = fixture();
        let out = evaluate(
            &test,
            &small,
            &big,
            &Policy::CloudOnly,
            &EvalConfig::default(),
        );
        assert!(out.big_map_pct > out.small_map_pct + 5.0);
        assert!(out.big_detected > out.small_detected);
    }

    #[test]
    fn discriminator_between_extremes_and_beats_random() {
        let (test, small, big) = fixture();
        let cfg = EvalConfig::default();
        // Calibrate on a separate training set, as the paper does.
        let train = Dataset::generate("train", &DatasetProfile::voc(), 400, 99);
        let (cal, _) = crate::calibrate(&train, &small, &big);
        let disc = DifficultCaseDiscriminator::new(cal.thresholds);
        let ours = evaluate(&test, &small, &big, &Policy::DifficultCase(disc), &cfg);
        assert!(ours.upload_ratio > 0.1 && ours.upload_ratio < 0.9);
        assert!(ours.e2e_map_pct > ours.small_map_pct);
        assert!(ours.e2e_map_pct <= ours.big_map_pct + 1e-9);
        // Compare with random at the same upload ratio.
        let rand = evaluate(
            &test,
            &small,
            &big,
            &Policy::Random {
                upload_fraction: ours.upload_ratio,
                seed: 5,
            },
            &cfg,
        );
        assert!(
            ours.e2e_map_pct > rand.e2e_map_pct,
            "ours {} vs random {}",
            ours.e2e_map_pct,
            rand.e2e_map_pct
        );
    }

    #[test]
    fn oracle_is_upper_boundish() {
        let (test, small, big) = fixture();
        let cfg = EvalConfig::default();
        let disc = DifficultCaseDiscriminator::new(Thresholds::paper());
        let ours = evaluate(&test, &small, &big, &Policy::DifficultCase(disc), &cfg);
        let oracle = evaluate(&test, &small, &big, &Policy::Oracle, &cfg);
        // The oracle detects at least as many objects per uploaded image.
        assert!(oracle.e2e_detected_vs_big_pct() >= ours.e2e_detected_vs_big_pct() - 2.0);
    }

    #[test]
    fn ratios_are_percentages() {
        let (test, small, big) = fixture();
        let out = evaluate(
            &test,
            &small,
            &big,
            &Policy::CloudOnly,
            &EvalConfig::default(),
        );
        assert!((out.e2e_map_vs_big_pct() - 100.0).abs() < 1e-9);
        assert!((out.e2e_detected_vs_big_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn test_stats_have_sane_ranges() {
        let (test, small, big) = fixture();
        let disc = DifficultCaseDiscriminator::default();
        let stats = discriminator_test_stats(&test, &small, &big, &disc);
        assert!(stats.accuracy > 0.5, "accuracy {}", stats.accuracy);
        assert!(stats.recall > 0.5, "recall {}", stats.recall);
    }
}
