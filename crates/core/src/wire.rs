//! Wire format for edge↔cloud messages: length-prefixed JSON frames.
//!
//! The runtime (see [`crate::runtime`]) ships real serialized bytes between
//! the edge and cloud threads, so payload sizes — and therefore simulated
//! transfer times — come from actual encoded messages, not guesses.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{de::DeserializeOwned, Serialize};
use std::fmt;

/// Maximum accepted frame payload (16 MiB) — guards against corrupt lengths.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Errors produced when decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The buffer is shorter than its length prefix promises.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized(usize),
    /// The payload was not valid JSON for the target type.
    Malformed(serde_json::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame is truncated"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds limit"),
            WireError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

/// Encodes a message as a length-prefixed JSON frame.
///
/// # Examples
///
/// ```
/// use smallbig_core::wire::{decode_frame, encode_frame};
///
/// let frame = encode_frame(&vec![1u32, 2, 3]);
/// let round_trip: Vec<u32> = decode_frame(&frame).unwrap();
/// assert_eq!(round_trip, vec![1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if the value cannot be serialized (never happens for the message
/// types in this crate).
pub fn encode_frame<T: Serialize>(value: &T) -> Bytes {
    let payload = serde_json::to_vec(value).expect("message types serialize infallibly");
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
    buf.freeze()
}

/// Decodes a length-prefixed JSON frame.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, oversized prefixes, or JSON errors.
pub fn decode_frame<T: DeserializeOwned>(frame: &Bytes) -> Result<T, WireError> {
    let mut buf = frame.clone();
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(len));
    }
    if buf.remaining() < len {
        return Err(WireError::Truncated);
    }
    serde_json::from_slice(&buf.chunk()[..len]).map_err(WireError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use detcore::{BBox, ClassId, Detection, ImageDetections};

    #[test]
    fn round_trip_detections() {
        let dets = ImageDetections::from_vec(vec![Detection::new(
            ClassId(3),
            0.77,
            BBox::new(0.1, 0.2, 0.5, 0.9).unwrap(),
        )]);
        let frame = encode_frame(&dets);
        let back: ImageDetections = decode_frame(&frame).unwrap();
        assert_eq!(back, dets);
    }

    #[test]
    fn frame_length_matches_prefix() {
        let frame = encode_frame(&"hello".to_string());
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), 4 + len);
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = encode_frame(&vec![1u8; 100]);
        let cut = frame.slice(..frame.len() - 10);
        assert!(matches!(
            decode_frame::<Vec<u8>>(&cut),
            Err(WireError::Truncated)
        ));
        let tiny = Bytes::from_static(&[1, 2]);
        assert!(matches!(
            decode_frame::<Vec<u8>>(&tiny),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_slice(b"xx");
        assert!(matches!(
            decode_frame::<Vec<u8>>(&buf.freeze()),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_slice(b"{{{");
        let err = decode_frame::<Vec<u8>>(&buf.freeze()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
        assert!(format!("{err}").contains("malformed"));
    }
}
