//! Wire format for edge↔cloud messages: length-prefixed JSON frames.
//!
//! The runtime (see [`crate::runtime`]) ships real serialized bytes between
//! the edge and cloud threads, so payload sizes — and therefore simulated
//! transfer times — come from actual encoded messages, not guesses.

use bytes::{Buf, Bytes};
use serde::{de::DeserializeOwned, Serialize};
use std::fmt;

/// Maximum accepted frame payload (16 MiB) — guards against corrupt lengths.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Errors produced when decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The buffer is shorter than its length prefix promises.
    Truncated,
    /// The length prefix exceeds the decoder's limit ([`MAX_FRAME_BYTES`]
    /// by default) — a corrupt or hostile prefix must not drive allocation.
    Oversized(usize),
    /// The buffer is longer than its length prefix promises. A well-formed
    /// peer never pads frames; trailing bytes mean framing has de-synced.
    TrailingBytes {
        /// Payload length the prefix promised.
        expected: usize,
        /// Bytes actually present after the prefix.
        actual: usize,
    },
    /// The payload was not valid JSON for the target type.
    Malformed(serde_json::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame is truncated"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds limit"),
            WireError::TrailingBytes { expected, actual } => write!(
                f,
                "frame has {actual} payload bytes but its prefix promises {expected}"
            ),
            WireError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

/// Encodes a message as a length-prefixed JSON frame.
///
/// # Examples
///
/// ```
/// use smallbig_core::wire::{decode_frame, encode_frame};
///
/// let frame = encode_frame(&vec![1u32, 2, 3]);
/// let round_trip: Vec<u32> = decode_frame(&frame).unwrap();
/// assert_eq!(round_trip, vec![1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if the value cannot be serialized (never happens for the message
/// types in this crate), or if the payload exceeds [`MAX_FRAME_BYTES`] —
/// a frame this encoder produces is always one its decoder accepts.
pub fn encode_frame<T: Serialize>(value: &T) -> Bytes {
    let mut buf = Vec::new();
    encode_frame_into(&mut buf, value);
    Bytes::from(buf)
}

/// Encodes a message as a length-prefixed JSON frame into a reusable buffer.
///
/// `buf` is cleared and refilled; reusing one buffer per session (as
/// [`crate::EdgeSession`] does for its upload headers) means frame encoding
/// stops allocating once the buffer reaches the session's largest message.
/// Serialization streams straight into the scratch `String`
/// (`serde_json::to_string_into` renders via `Serialize::write_json`, no
/// intermediate `Value` tree), so after warmup an encode performs no
/// allocation at all. [`encode_frame`] is a thin wrapper over this.
///
/// # Examples
///
/// ```
/// use smallbig_core::wire::{decode_frame, encode_frame_into};
///
/// let mut buf = Vec::new();
/// encode_frame_into(&mut buf, &vec![1u32, 2, 3]);
/// let round_trip: Vec<u32> = decode_frame(&bytes::Bytes::copy_from_slice(&buf)).unwrap();
/// assert_eq!(round_trip, vec![1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if the value cannot be serialized (never happens for the message
/// types in this crate), or if the payload exceeds [`MAX_FRAME_BYTES`] —
/// a frame this encoder produces is always one its decoder accepts.
pub fn encode_frame_into<T: Serialize>(buf: &mut Vec<u8>, value: &T) {
    use std::cell::RefCell;
    thread_local! {
        static JSON_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
    }
    JSON_SCRATCH.with(|scratch| {
        let mut payload = scratch.borrow_mut();
        serde_json::to_string_into(&mut payload, value)
            .expect("message types serialize infallibly");
        assert!(
            payload.len() <= MAX_FRAME_BYTES,
            "frame payload of {} bytes exceeds MAX_FRAME_BYTES",
            payload.len()
        );
        buf.clear();
        buf.reserve(4 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload.as_bytes());
    });
}

/// Decodes a length-prefixed JSON frame under the default
/// [`MAX_FRAME_BYTES`] limit.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, oversized prefixes, trailing
/// garbage, or JSON errors.
pub fn decode_frame<T: DeserializeOwned>(frame: &Bytes) -> Result<T, WireError> {
    decode_frame_with_limit(frame, MAX_FRAME_BYTES)
}

/// Decodes a length-prefixed JSON frame, rejecting payloads whose length
/// prefix exceeds `max_payload_bytes`.
///
/// The limit is enforced *before* the payload is touched, so a corrupt or
/// hostile prefix cannot drive allocation, and a frame must contain exactly
/// `4 + len` bytes — anything shorter is [`WireError::Truncated`], anything
/// longer [`WireError::TrailingBytes`].
///
/// # Errors
///
/// Returns [`WireError`] on truncation, oversized prefixes, trailing
/// garbage, or JSON errors.
///
/// # Examples
///
/// ```
/// use smallbig_core::wire::{decode_frame_with_limit, encode_frame, WireError};
///
/// let frame = encode_frame(&vec![0u8; 64]);
/// assert!(matches!(
///     decode_frame_with_limit::<Vec<u8>>(&frame, 16),
///     Err(WireError::Oversized(_))
/// ));
/// ```
pub fn decode_frame_with_limit<T: DeserializeOwned>(
    frame: &Bytes,
    max_payload_bytes: usize,
) -> Result<T, WireError> {
    let mut buf = frame.clone();
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if len > max_payload_bytes {
        return Err(WireError::Oversized(len));
    }
    if buf.remaining() < len {
        return Err(WireError::Truncated);
    }
    if buf.remaining() > len {
        return Err(WireError::TrailingBytes {
            expected: len,
            actual: buf.remaining(),
        });
    }
    serde_json::from_slice(&buf.chunk()[..len]).map_err(WireError::Malformed)
}

/// Incremental decoder for a byte stream of length-prefixed frames.
///
/// [`decode_frame`] assumes it is handed exactly one complete frame, which
/// holds for in-process channels but not for sockets: a `read()` may return
/// half a frame, three frames, or a frame boundary split anywhere — including
/// mid-prefix. `FrameReader` buffers fed chunks and yields complete frame
/// *payloads* (prefix stripped) as they become available:
///
/// ```
/// use smallbig_core::wire::{encode_frame, FrameReader};
///
/// let frame = encode_frame(&vec![1u32, 2, 3]);
/// let mut reader = FrameReader::new();
/// let (a, b) = frame.split_at(3); // split inside the length prefix
/// reader.feed(a);
/// assert!(reader.next_frame().unwrap().is_none());
/// reader.feed(b);
/// let payload = reader.next_frame().unwrap().unwrap();
/// assert_eq!(&payload[..], &frame[4..]);
/// ```
///
/// A length prefix above the reader's limit yields
/// [`WireError::Oversized`] *before* any payload is buffered past the
/// prefix, so a corrupt or hostile prefix cannot drive allocation. Framing
/// cannot resync after that: the caller must drop the connection.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    limit: usize,
}

impl FrameReader {
    /// A reader enforcing the default [`MAX_FRAME_BYTES`] payload limit.
    pub fn new() -> Self {
        Self::with_limit(MAX_FRAME_BYTES)
    }

    /// A reader rejecting payloads whose prefix exceeds `max_payload_bytes`.
    pub fn with_limit(max_payload_bytes: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            limit: max_payload_bytes,
        }
    }

    /// Appends raw bytes from the stream (typically one `read()`'s worth).
    pub fn feed(&mut self, chunk: &[u8]) {
        // Reclaim consumed space before growing, so steady-state streaming
        // keeps one bounded buffer instead of creeping forward forever.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Yields the next complete frame payload, `None` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Oversized`] when the buffered length prefix
    /// exceeds the reader's limit. The stream is unrecoverable after that.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let prefix: [u8; 4] = self.buf[self.start..self.start + 4].try_into().unwrap();
        let len = u32::from_le_bytes(prefix) as usize;
        if len > self.limit {
            return Err(WireError::Oversized(len));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let payload = Bytes::copy_from_slice(&self.buf[self.start + 4..self.start + 4 + len]);
        self.start += 4 + len;
        Ok(Some(payload))
    }

    /// Bytes currently buffered but not yet yielded as a frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{BufMut, BytesMut};
    use detcore::{BBox, ClassId, Detection, ImageDetections};

    #[test]
    fn round_trip_detections() {
        let dets = ImageDetections::from_vec(vec![Detection::new(
            ClassId(3),
            0.77,
            BBox::new(0.1, 0.2, 0.5, 0.9).unwrap(),
        )]);
        let frame = encode_frame(&dets);
        let back: ImageDetections = decode_frame(&frame).unwrap();
        assert_eq!(back, dets);
    }

    #[test]
    fn frame_length_matches_prefix() {
        let frame = encode_frame(&"hello".to_string());
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), 4 + len);
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = encode_frame(&vec![1u8; 100]);
        let cut = frame.slice(..frame.len() - 10);
        assert!(matches!(
            decode_frame::<Vec<u8>>(&cut),
            Err(WireError::Truncated)
        ));
        let tiny = Bytes::from_static(&[1, 2]);
        assert!(matches!(
            decode_frame::<Vec<u8>>(&tiny),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_slice(b"xx");
        assert!(matches!(
            decode_frame::<Vec<u8>>(&buf.freeze()),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_slice(b"{{{");
        let err = decode_frame::<Vec<u8>>(&buf.freeze()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
        assert!(format!("{err}").contains("malformed"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(b"[]xxxx");
        let err = decode_frame::<Vec<u8>>(&buf.freeze()).unwrap_err();
        assert!(matches!(
            err,
            WireError::TrailingBytes {
                expected: 2,
                actual: 6
            }
        ));
        assert!(format!("{err}").contains("promises"));
    }

    #[test]
    fn custom_limit_is_enforced_before_payload_parse() {
        let frame = encode_frame(&vec![7u8; 1000]);
        assert!(decode_frame::<Vec<u8>>(&frame).is_ok());
        let err = decode_frame_with_limit::<Vec<u8>>(&frame, 100).unwrap_err();
        match err {
            WireError::Oversized(n) => assert!(n > 100),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn prefix_just_over_limit_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_BYTES + 1) as u32);
        buf.put_slice(b"x");
        assert!(matches!(
            decode_frame::<Vec<u8>>(&buf.freeze()),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn empty_payload_frame_round_trips() {
        let frame = encode_frame(&Vec::<u8>::new());
        let back: Vec<u8> = decode_frame(&frame).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FRAME_BYTES")]
    fn encode_rejects_oversized_payload() {
        // 17 MiB of bytes serializes past the 16 MiB frame cap.
        let _ = encode_frame(&vec![200u8; 17 * 1024 * 1024]);
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_wrapper() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, &vec![1u32, 2, 3]);
        let first_cap = buf.capacity();
        let wrapper = encode_frame(&vec![1u32, 2, 3]);
        assert_eq!(&buf[..], &wrapper[..]);
        // A smaller message clears and refills without reallocating.
        encode_frame_into(&mut buf, &vec![9u32]);
        assert_eq!(buf.capacity(), first_cap);
        let back: Vec<u32> = decode_frame(&Bytes::copy_from_slice(&buf)).unwrap();
        assert_eq!(back, vec![9]);
    }

    #[test]
    fn frame_reader_yields_payloads_across_arbitrary_splits() {
        let frames: Vec<Bytes> = (0..4)
            .map(|i| encode_frame(&vec![i as u8; 10 + i * 7]))
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        // Feed the whole stream one byte at a time.
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for b in &stream {
            reader.feed(std::slice::from_ref(b));
            while let Some(p) = reader.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), frames.len());
        for (p, f) in got.iter().zip(&frames) {
            assert_eq!(&p[..], &f[4..]);
        }
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn frame_reader_yields_multiple_frames_from_one_chunk() {
        let a = encode_frame(&"first".to_string());
        let b = encode_frame(&"second".to_string());
        let mut stream = a.to_vec();
        stream.extend_from_slice(&b);
        let mut reader = FrameReader::new();
        reader.feed(&stream);
        let s1: String = decode_frame_payload(&reader.next_frame().unwrap().unwrap()).unwrap();
        let s2: String = decode_frame_payload(&reader.next_frame().unwrap().unwrap()).unwrap();
        assert_eq!((s1.as_str(), s2.as_str()), ("first", "second"));
        assert!(reader.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_reader_rejects_hostile_prefix_before_buffering_payload() {
        let mut reader = FrameReader::with_limit(64);
        let mut hostile = BytesMut::new();
        hostile.put_u32_le(u32::MAX);
        reader.feed(&hostile);
        assert!(matches!(reader.next_frame(), Err(WireError::Oversized(_))));
    }

    #[test]
    fn frame_reader_compacts_consumed_space() {
        let frame = encode_frame(&vec![1u8; 2048]);
        let mut reader = FrameReader::new();
        for _ in 0..64 {
            reader.feed(&frame);
            assert!(reader.next_frame().unwrap().is_some());
        }
        assert_eq!(reader.pending_bytes(), 0);
        // The internal buffer must not have grown to hold all 64 frames.
        assert!(reader.buf.len() < 3 * frame.len());
    }

    fn decode_frame_payload<T: serde::de::DeserializeOwned>(
        payload: &Bytes,
    ) -> Result<T, WireError> {
        serde_json::from_slice(payload.chunk()).map_err(WireError::Malformed)
    }

    #[test]
    fn encode_into_overwrites_previous_content() {
        let mut buf = vec![0xFFu8; 64];
        encode_frame_into(&mut buf, &"fresh".to_string());
        let s: String = decode_frame(&Bytes::copy_from_slice(&buf)).unwrap();
        assert_eq!(s, "fresh");
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(buf.len(), 4 + len);
    }
}
