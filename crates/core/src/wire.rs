//! Wire format for edge↔cloud messages: length-prefixed frames.
//!
//! The runtime (see [`crate::runtime`]) ships real serialized bytes between
//! the edge and cloud threads, so payload sizes — and therefore simulated
//! transfer times — come from actual encoded messages, not guesses.
//!
//! # Encodings and negotiation
//!
//! Every frame is a 4-byte little-endian length prefix followed by a
//! payload in one of two encodings:
//!
//! - [`Encoding::Json`] — compact RFC 8259 text, the default and the only
//!   encoding protocol-version-1 peers are required to understand. All
//!   handshake messages (`Hello`/`Welcome`/`Refused`) are **always** JSON,
//!   so peers can negotiate before agreeing on anything else.
//! - [`Encoding::Binary`] — a compact self-describing binary form (tag
//!   bytes, LEB128 varints, raw little-endian `f64`, per-message key
//!   dictionary pre-seeded from the protocol's [`BINARY_STATIC_KEYS`]
//!   table; see `serde_json::to_vec_binary_into_with_dict`). Well under
//!   half the JSON byte size on detection workloads, which matters because
//!   uplink bytes are the scarce resource this system economizes.
//!
//! Both encodings flow through the same hand-rolled `Serialize` /
//! `Deserialize` derive machinery and carry the identical data model, so a
//! message round-trips bit-identically through either. The framing layer
//! ([`FrameReader`], the length prefix, [`MAX_FRAME_BYTES`]) is
//! encoding-agnostic: payload bytes are opaque until decoded.
//!
//! Which encoding a connection uses is negotiated in the transport
//! handshake (see [`crate::transport`]): the client names its preferred
//! encoding in `Hello`, the server echoes the agreed choice in `Welcome`,
//! and absent fields mean JSON — so old JSON-only peers interoperate with
//! new binaries in both directions without version bumps.

use bytes::{Buf, Bytes};
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::fmt;

/// Maximum accepted frame payload (16 MiB) — guards against corrupt lengths.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Errors produced when decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The buffer is shorter than its length prefix promises.
    Truncated,
    /// The length prefix exceeds the decoder's limit ([`MAX_FRAME_BYTES`]
    /// by default) — a corrupt or hostile prefix must not drive allocation.
    Oversized(usize),
    /// The buffer is longer than its length prefix promises. A well-formed
    /// peer never pads frames; trailing bytes mean framing has de-synced.
    TrailingBytes {
        /// Payload length the prefix promised.
        expected: usize,
        /// Bytes actually present after the prefix.
        actual: usize,
    },
    /// The payload was not valid JSON for the target type.
    Malformed(serde_json::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame is truncated"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds limit"),
            WireError::TrailingBytes { expected, actual } => write!(
                f,
                "frame has {actual} payload bytes but its prefix promises {expected}"
            ),
            WireError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

/// Payload encoding of a frame — see the module docs' "Encodings and
/// negotiation" section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Encoding {
    /// Compact JSON text (the protocol default; what absent negotiation
    /// fields mean).
    #[default]
    Json,
    /// Compact self-describing binary (`serde_json::to_vec_binary`),
    /// with the key dictionary pre-seeded from [`BINARY_STATIC_KEYS`].
    Binary,
}

/// Static key table of the `binary` encoding: the field names of every
/// message that crosses the data plane (scenes, submit headers, answers,
/// probes, link models), pre-interned so they cost one back-reference byte
/// instead of their text even on first use — the dominant per-frame
/// overhead once values are binary. The table is part of the `binary`
/// format both peers negotiate: changing it (including reordering) is a
/// protocol change and must bump the encoding name. Handshake frames are
/// always JSON, so [`Hello`](crate::transport::Hello) /
/// [`Welcome`](crate::transport::Welcome) field names don't belong here.
pub const BINARY_STATIC_KEYS: &[&str] = &[
    // WireSubmit envelope.
    "header",
    "scene",
    // SubmitRequest / SubmitResponse headers.
    "session",
    "ticket",
    "frame_bytes",
    "sent_at",
    "uplink_s",
    "difficulty",
    "deadline_at",
    "infer_s",
    "queue_depth",
    "dets",
    // Scene and its objects.
    "id",
    "objects",
    "camera_blur",
    "noise_std",
    "illumination",
    "seed",
    "class",
    "bbox",
    "texture_seed",
    "x_min",
    "y_min",
    "x_max",
    "y_max",
    // Detections.
    "score",
    // Register / probe control frames.
    "link",
    "name",
    "bandwidth_bps",
    "rtt_s",
    "jitter_sigma",
    "loss_prob",
    "now",
    "admitted",
    // SubmitRequest pseudo-label field (appended in the same protocol
    // revision as the update frame below).
    "small_count",
    // CalibrationUpdate frames (cloud → edge model-update push) and their
    // nested Thresholds.
    "format",
    "version",
    "epoch",
    "thresholds",
    "quantile_scores",
    "examples",
    "accuracy",
    "holdout",
    "divergence",
    "conf",
    "count",
    "area",
];

impl Encoding {
    /// The lowercase wire/CLI name (`"json"` / `"binary"`).
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Json => "json",
            Encoding::Binary => "binary",
        }
    }

    /// Parses a wire/CLI name; `None` for anything unrecognized (the
    /// handshake turns that into a typed error rather than guessing).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "json" => Some(Encoding::Json),
            "binary" => Some(Encoding::Binary),
            _ => None,
        }
    }
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Encodes a message as a length-prefixed JSON frame.
///
/// # Examples
///
/// ```
/// use smallbig_core::wire::{decode_frame, encode_frame};
///
/// let frame = encode_frame(&vec![1u32, 2, 3]);
/// let round_trip: Vec<u32> = decode_frame(&frame).unwrap();
/// assert_eq!(round_trip, vec![1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if the value cannot be serialized (never happens for the message
/// types in this crate), or if the payload exceeds [`MAX_FRAME_BYTES`] —
/// a frame this encoder produces is always one its decoder accepts.
pub fn encode_frame<T: Serialize>(value: &T) -> Bytes {
    let mut buf = Vec::new();
    encode_frame_into(&mut buf, value);
    Bytes::from(buf)
}

/// Encodes a message as a length-prefixed JSON frame into a reusable buffer.
///
/// `buf` is cleared and refilled; reusing one buffer per session (as
/// [`crate::EdgeSession`] does for its upload headers) means frame encoding
/// stops allocating once the buffer reaches the session's largest message.
/// Serialization streams straight into the scratch `String`
/// (`serde_json::to_string_into` renders via `Serialize::write_json`, no
/// intermediate `Value` tree), so after warmup an encode performs no
/// allocation at all. [`encode_frame`] is a thin wrapper over this.
///
/// # Examples
///
/// ```
/// use smallbig_core::wire::{decode_frame, encode_frame_into};
///
/// let mut buf = Vec::new();
/// encode_frame_into(&mut buf, &vec![1u32, 2, 3]);
/// let round_trip: Vec<u32> = decode_frame(&bytes::Bytes::copy_from_slice(&buf)).unwrap();
/// assert_eq!(round_trip, vec![1, 2, 3]);
/// ```
///
/// # Panics
///
/// Panics if the value cannot be serialized (never happens for the message
/// types in this crate), or if the payload exceeds [`MAX_FRAME_BYTES`] —
/// a frame this encoder produces is always one its decoder accepts.
pub fn encode_frame_into<T: Serialize>(buf: &mut Vec<u8>, value: &T) {
    use std::cell::RefCell;
    thread_local! {
        static JSON_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
    }
    JSON_SCRATCH.with(|scratch| {
        let mut payload = scratch.borrow_mut();
        serde_json::to_string_into(&mut payload, value)
            .expect("message types serialize infallibly");
        assert!(
            payload.len() <= MAX_FRAME_BYTES,
            "frame payload of {} bytes exceeds MAX_FRAME_BYTES",
            payload.len()
        );
        buf.clear();
        buf.reserve(4 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload.as_bytes());
    });
}

/// Encodes a message as a length-prefixed frame in the given [`Encoding`].
///
/// [`Encoding::Json`] produces exactly [`encode_frame`]'s bytes.
///
/// # Panics
///
/// Same contract as [`encode_frame`]: panics on unserializable values
/// (non-finite floats) or payloads beyond [`MAX_FRAME_BYTES`].
pub fn encode_frame_as<T: Serialize>(value: &T, encoding: Encoding) -> Bytes {
    let mut buf = Vec::new();
    encode_frame_into_as(&mut buf, value, encoding);
    Bytes::from(buf)
}

/// Encodes a message as a length-prefixed frame in the given [`Encoding`],
/// into a reusable buffer — the negotiated-encoding sibling of
/// [`encode_frame_into`], with the same buffer-reuse and panic contract.
pub fn encode_frame_into_as<T: Serialize>(buf: &mut Vec<u8>, value: &T, encoding: Encoding) {
    match encoding {
        Encoding::Json => encode_frame_into(buf, value),
        Encoding::Binary => {
            use std::cell::RefCell;
            thread_local! {
                static BIN_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
            }
            BIN_SCRATCH.with(|scratch| {
                let mut payload = scratch.borrow_mut();
                serde_json::to_vec_binary_into_with_dict(&mut payload, value, BINARY_STATIC_KEYS)
                    .expect("message types serialize infallibly");
                assert!(
                    payload.len() <= MAX_FRAME_BYTES,
                    "frame payload of {} bytes exceeds MAX_FRAME_BYTES",
                    payload.len()
                );
                buf.clear();
                buf.reserve(4 + payload.len());
                buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(&payload);
            });
        }
    }
}

/// Decodes a length-prefixed frame in the given [`Encoding`] under the
/// default [`MAX_FRAME_BYTES`] limit.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, oversized prefixes, trailing
/// garbage, or payload decode errors — the identical error discipline in
/// both encodings.
pub fn decode_frame_as<T: DeserializeOwned>(
    frame: &Bytes,
    encoding: Encoding,
) -> Result<T, WireError> {
    decode_frame_with_limit_as(frame, MAX_FRAME_BYTES, encoding)
}

/// Decodes a length-prefixed frame in the given [`Encoding`], rejecting
/// payloads whose length prefix exceeds `max_payload_bytes` — the
/// negotiated-encoding sibling of [`decode_frame_with_limit`], enforcing
/// the limit before the payload is touched in exactly the same way.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, oversized prefixes, trailing
/// garbage, or payload decode errors.
pub fn decode_frame_with_limit_as<T: DeserializeOwned>(
    frame: &Bytes,
    max_payload_bytes: usize,
    encoding: Encoding,
) -> Result<T, WireError> {
    match encoding {
        Encoding::Json => decode_frame_with_limit(frame, max_payload_bytes),
        Encoding::Binary => {
            let payload = frame_payload(frame, max_payload_bytes)?;
            serde_json::from_slice_binary_with_dict(payload, BINARY_STATIC_KEYS)
                .map_err(WireError::Malformed)
        }
    }
}

/// Shared prefix/limit/length validation for both encodings: returns the
/// payload slice of a frame holding exactly `4 + len` bytes.
fn frame_payload(frame: &Bytes, max_payload_bytes: usize) -> Result<&[u8], WireError> {
    let buf = frame.chunk();
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes checked")) as usize;
    if len > max_payload_bytes {
        return Err(WireError::Oversized(len));
    }
    let payload = &buf[4..];
    if payload.len() < len {
        return Err(WireError::Truncated);
    }
    if payload.len() > len {
        return Err(WireError::TrailingBytes {
            expected: len,
            actual: payload.len(),
        });
    }
    Ok(payload)
}

/// Decodes a length-prefixed JSON frame under the default
/// [`MAX_FRAME_BYTES`] limit.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, oversized prefixes, trailing
/// garbage, or JSON errors.
pub fn decode_frame<T: DeserializeOwned>(frame: &Bytes) -> Result<T, WireError> {
    decode_frame_with_limit(frame, MAX_FRAME_BYTES)
}

/// Decodes a length-prefixed JSON frame, rejecting payloads whose length
/// prefix exceeds `max_payload_bytes`.
///
/// The limit is enforced *before* the payload is touched, so a corrupt or
/// hostile prefix cannot drive allocation, and a frame must contain exactly
/// `4 + len` bytes — anything shorter is [`WireError::Truncated`], anything
/// longer [`WireError::TrailingBytes`].
///
/// # Errors
///
/// Returns [`WireError`] on truncation, oversized prefixes, trailing
/// garbage, or JSON errors.
///
/// # Examples
///
/// ```
/// use smallbig_core::wire::{decode_frame_with_limit, encode_frame, WireError};
///
/// let frame = encode_frame(&vec![0u8; 64]);
/// assert!(matches!(
///     decode_frame_with_limit::<Vec<u8>>(&frame, 16),
///     Err(WireError::Oversized(_))
/// ));
/// ```
pub fn decode_frame_with_limit<T: DeserializeOwned>(
    frame: &Bytes,
    max_payload_bytes: usize,
) -> Result<T, WireError> {
    let mut buf = frame.clone();
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if len > max_payload_bytes {
        return Err(WireError::Oversized(len));
    }
    if buf.remaining() < len {
        return Err(WireError::Truncated);
    }
    if buf.remaining() > len {
        return Err(WireError::TrailingBytes {
            expected: len,
            actual: buf.remaining(),
        });
    }
    serde_json::from_slice(&buf.chunk()[..len]).map_err(WireError::Malformed)
}

/// Incremental decoder for a byte stream of length-prefixed frames.
///
/// [`decode_frame`] assumes it is handed exactly one complete frame, which
/// holds for in-process channels but not for sockets: a `read()` may return
/// half a frame, three frames, or a frame boundary split anywhere — including
/// mid-prefix. `FrameReader` buffers fed chunks and yields complete frame
/// *payloads* (prefix stripped) as they become available:
///
/// ```
/// use smallbig_core::wire::{encode_frame, FrameReader};
///
/// let frame = encode_frame(&vec![1u32, 2, 3]);
/// let mut reader = FrameReader::new();
/// let (a, b) = frame.split_at(3); // split inside the length prefix
/// reader.feed(a);
/// assert!(reader.next_frame().unwrap().is_none());
/// reader.feed(b);
/// let payload = reader.next_frame().unwrap().unwrap();
/// assert_eq!(&payload[..], &frame[4..]);
/// ```
///
/// A length prefix above the reader's limit yields
/// [`WireError::Oversized`] *before* any payload is buffered past the
/// prefix, so a corrupt or hostile prefix cannot drive allocation. Framing
/// cannot resync after that: the caller must drop the connection.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    limit: usize,
}

impl FrameReader {
    /// A reader enforcing the default [`MAX_FRAME_BYTES`] payload limit.
    pub fn new() -> Self {
        Self::with_limit(MAX_FRAME_BYTES)
    }

    /// A reader rejecting payloads whose prefix exceeds `max_payload_bytes`.
    pub fn with_limit(max_payload_bytes: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            limit: max_payload_bytes,
        }
    }

    /// Appends raw bytes from the stream (typically one `read()`'s worth).
    pub fn feed(&mut self, chunk: &[u8]) {
        // Reclaim consumed space before growing, so steady-state streaming
        // keeps one bounded buffer instead of creeping forward forever.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Yields the next complete frame payload, `None` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Oversized`] when the buffered length prefix
    /// exceeds the reader's limit. The stream is unrecoverable after that.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let prefix: [u8; 4] = self.buf[self.start..self.start + 4].try_into().unwrap();
        let len = u32::from_le_bytes(prefix) as usize;
        if len > self.limit {
            return Err(WireError::Oversized(len));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let payload = Bytes::copy_from_slice(&self.buf[self.start + 4..self.start + 4 + len]);
        self.start += 4 + len;
        Ok(Some(payload))
    }

    /// Bytes currently buffered but not yet yielded as a frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{BufMut, BytesMut};
    use detcore::{BBox, ClassId, Detection, ImageDetections};

    #[test]
    fn round_trip_detections() {
        let dets = ImageDetections::from_vec(vec![Detection::new(
            ClassId(3),
            0.77,
            BBox::new(0.1, 0.2, 0.5, 0.9).unwrap(),
        )]);
        let frame = encode_frame(&dets);
        let back: ImageDetections = decode_frame(&frame).unwrap();
        assert_eq!(back, dets);
    }

    #[test]
    fn frame_length_matches_prefix() {
        let frame = encode_frame(&"hello".to_string());
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), 4 + len);
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = encode_frame(&vec![1u8; 100]);
        let cut = frame.slice(..frame.len() - 10);
        assert!(matches!(
            decode_frame::<Vec<u8>>(&cut),
            Err(WireError::Truncated)
        ));
        let tiny = Bytes::from_static(&[1, 2]);
        assert!(matches!(
            decode_frame::<Vec<u8>>(&tiny),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_slice(b"xx");
        assert!(matches!(
            decode_frame::<Vec<u8>>(&buf.freeze()),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_slice(b"{{{");
        let err = decode_frame::<Vec<u8>>(&buf.freeze()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
        assert!(format!("{err}").contains("malformed"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(b"[]xxxx");
        let err = decode_frame::<Vec<u8>>(&buf.freeze()).unwrap_err();
        assert!(matches!(
            err,
            WireError::TrailingBytes {
                expected: 2,
                actual: 6
            }
        ));
        assert!(format!("{err}").contains("promises"));
    }

    #[test]
    fn custom_limit_is_enforced_before_payload_parse() {
        let frame = encode_frame(&vec![7u8; 1000]);
        assert!(decode_frame::<Vec<u8>>(&frame).is_ok());
        let err = decode_frame_with_limit::<Vec<u8>>(&frame, 100).unwrap_err();
        match err {
            WireError::Oversized(n) => assert!(n > 100),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn prefix_just_over_limit_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_BYTES + 1) as u32);
        buf.put_slice(b"x");
        assert!(matches!(
            decode_frame::<Vec<u8>>(&buf.freeze()),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn empty_payload_frame_round_trips() {
        let frame = encode_frame(&Vec::<u8>::new());
        let back: Vec<u8> = decode_frame(&frame).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FRAME_BYTES")]
    fn encode_rejects_oversized_payload() {
        // 17 MiB of bytes serializes past the 16 MiB frame cap.
        let _ = encode_frame(&vec![200u8; 17 * 1024 * 1024]);
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_wrapper() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, &vec![1u32, 2, 3]);
        let first_cap = buf.capacity();
        let wrapper = encode_frame(&vec![1u32, 2, 3]);
        assert_eq!(&buf[..], &wrapper[..]);
        // A smaller message clears and refills without reallocating.
        encode_frame_into(&mut buf, &vec![9u32]);
        assert_eq!(buf.capacity(), first_cap);
        let back: Vec<u32> = decode_frame(&Bytes::copy_from_slice(&buf)).unwrap();
        assert_eq!(back, vec![9]);
    }

    #[test]
    fn frame_reader_yields_payloads_across_arbitrary_splits() {
        let frames: Vec<Bytes> = (0..4)
            .map(|i| encode_frame(&vec![i as u8; 10 + i * 7]))
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        // Feed the whole stream one byte at a time.
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for b in &stream {
            reader.feed(std::slice::from_ref(b));
            while let Some(p) = reader.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), frames.len());
        for (p, f) in got.iter().zip(&frames) {
            assert_eq!(&p[..], &f[4..]);
        }
        assert_eq!(reader.pending_bytes(), 0);
    }

    #[test]
    fn frame_reader_yields_multiple_frames_from_one_chunk() {
        let a = encode_frame(&"first".to_string());
        let b = encode_frame(&"second".to_string());
        let mut stream = a.to_vec();
        stream.extend_from_slice(&b);
        let mut reader = FrameReader::new();
        reader.feed(&stream);
        let s1: String = decode_frame_payload(&reader.next_frame().unwrap().unwrap()).unwrap();
        let s2: String = decode_frame_payload(&reader.next_frame().unwrap().unwrap()).unwrap();
        assert_eq!((s1.as_str(), s2.as_str()), ("first", "second"));
        assert!(reader.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_reader_rejects_hostile_prefix_before_buffering_payload() {
        let mut reader = FrameReader::with_limit(64);
        let mut hostile = BytesMut::new();
        hostile.put_u32_le(u32::MAX);
        reader.feed(&hostile);
        assert!(matches!(reader.next_frame(), Err(WireError::Oversized(_))));
    }

    #[test]
    fn frame_reader_compacts_consumed_space() {
        let frame = encode_frame(&vec![1u8; 2048]);
        let mut reader = FrameReader::new();
        for _ in 0..64 {
            reader.feed(&frame);
            assert!(reader.next_frame().unwrap().is_some());
        }
        assert_eq!(reader.pending_bytes(), 0);
        // The internal buffer must not have grown to hold all 64 frames.
        assert!(reader.buf.len() < 3 * frame.len());
    }

    fn decode_frame_payload<T: serde::de::DeserializeOwned>(
        payload: &Bytes,
    ) -> Result<T, WireError> {
        serde_json::from_slice(payload.chunk()).map_err(WireError::Malformed)
    }

    #[test]
    fn encode_into_overwrites_previous_content() {
        let mut buf = vec![0xFFu8; 64];
        encode_frame_into(&mut buf, &"fresh".to_string());
        let s: String = decode_frame(&Bytes::copy_from_slice(&buf)).unwrap();
        assert_eq!(s, "fresh");
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(buf.len(), 4 + len);
    }

    // ---- encoding selection ----

    #[test]
    fn encoding_names_round_trip() {
        for enc in [Encoding::Json, Encoding::Binary] {
            assert_eq!(Encoding::parse(enc.name()), Some(enc));
            assert_eq!(format!("{enc}"), enc.name());
        }
        assert_eq!(Encoding::parse("msgpack"), None);
        assert_eq!(Encoding::parse(""), None);
        assert_eq!(Encoding::default(), Encoding::Json);
    }

    #[test]
    fn json_encoding_as_matches_plain_encode() {
        let dets = ImageDetections::from_vec(vec![Detection::new(
            ClassId(3),
            0.77,
            BBox::new(0.1, 0.2, 0.5, 0.9).unwrap(),
        )]);
        assert_eq!(encode_frame_as(&dets, Encoding::Json), encode_frame(&dets));
        let back: ImageDetections = decode_frame_as(&encode_frame(&dets), Encoding::Json).unwrap();
        assert_eq!(back, dets);
    }

    #[test]
    fn binary_encoding_round_trips_and_is_smaller() {
        let dets = ImageDetections::from_vec(
            (0..8)
                .map(|i| {
                    Detection::new(
                        ClassId(i),
                        0.5 + f64::from(i) / 100.0,
                        BBox::new(0.1, 0.2, 0.5, 0.9).unwrap(),
                    )
                })
                .collect(),
        );
        let json = encode_frame_as(&dets, Encoding::Json);
        let binary = encode_frame_as(&dets, Encoding::Binary);
        let back: ImageDetections = decode_frame_as(&binary, Encoding::Binary).unwrap();
        assert_eq!(back, dets);
        assert!(
            binary.len() < json.len(),
            "binary {} should beat JSON {}",
            binary.len(),
            json.len()
        );
        // Cross-decoding with the wrong encoding is an error, not garbage.
        assert!(decode_frame_as::<ImageDetections>(&binary, Encoding::Json).is_err());
    }

    #[test]
    fn binary_decode_keeps_frame_error_discipline() {
        let frame = encode_frame_as(&vec![7u8; 1000], Encoding::Binary);
        assert!(decode_frame_as::<Vec<u8>>(&frame, Encoding::Binary).is_ok());
        assert!(matches!(
            decode_frame_with_limit_as::<Vec<u8>>(&frame, 100, Encoding::Binary),
            Err(WireError::Oversized(_))
        ));
        let cut = frame.slice(..frame.len() - 10);
        assert!(matches!(
            decode_frame_as::<Vec<u8>>(&cut, Encoding::Binary),
            Err(WireError::Truncated)
        ));
        let mut padded = frame.to_vec();
        padded.extend_from_slice(b"xx");
        assert!(matches!(
            decode_frame_as::<Vec<u8>>(&Bytes::from(padded), Encoding::Binary),
            Err(WireError::TrailingBytes { .. })
        ));
        let mut garbage = BytesMut::new();
        garbage.put_u32_le(3);
        garbage.put_slice(&[0xfe, 0xfe, 0xfe]);
        assert!(matches!(
            decode_frame_as::<Vec<u8>>(&garbage.freeze(), Encoding::Binary),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn binary_encode_into_reuses_buffer_and_matches_wrapper() {
        let mut buf = Vec::new();
        encode_frame_into_as(&mut buf, &vec![1u32, 2, 3], Encoding::Binary);
        let first_cap = buf.capacity();
        let wrapper = encode_frame_as(&vec![1u32, 2, 3], Encoding::Binary);
        assert_eq!(&buf[..], &wrapper[..]);
        encode_frame_into_as(&mut buf, &vec![9u32], Encoding::Binary);
        assert_eq!(buf.capacity(), first_cap);
        let back: Vec<u32> =
            decode_frame_as(&Bytes::copy_from_slice(&buf), Encoding::Binary).unwrap();
        assert_eq!(back, vec![9]);
    }

    #[test]
    fn frame_reader_handles_binary_frames_across_arbitrary_splits() {
        // The framing layer is encoding-agnostic: byte-at-a-time feeding of
        // a binary frame stream must reassemble every payload exactly,
        // including payloads full of 0x00/0xff bytes that would be hostile
        // if anything sniffed at content.
        let frames: Vec<Bytes> = (0..4)
            .map(|i| {
                encode_frame_as(
                    &ImageDetections::from_vec(vec![Detection::new(
                        ClassId(i),
                        0.25 + f64::from(i) / 10.0,
                        BBox::new(0.0, 0.0, 1.0, 1.0).unwrap(),
                    )]),
                    Encoding::Binary,
                )
            })
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        for chunk_size in [1usize, 2, 3, 5, 7, 64] {
            let mut reader = FrameReader::new();
            let mut got = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                reader.feed(chunk);
                while let Some(p) = reader.next_frame().unwrap() {
                    got.push(p);
                }
            }
            assert_eq!(got.len(), frames.len(), "chunk_size {chunk_size}");
            for (p, f) in got.iter().zip(&frames) {
                assert_eq!(&p[..], &f[4..], "chunk_size {chunk_size}");
                let dets: ImageDetections =
                    serde_json::from_slice_binary_with_dict(p, BINARY_STATIC_KEYS).unwrap();
                let want: ImageDetections = decode_frame_as(f, Encoding::Binary).unwrap();
                assert_eq!(dets, want);
            }
            assert_eq!(reader.pending_bytes(), 0);
        }
    }

    // ---- calibration-update frames ----

    fn sample_update() -> crate::CalibrationUpdate {
        crate::CalibrationUpdate {
            format: crate::UPDATE_FORMAT,
            version: 3,
            epoch: 7,
            thresholds: crate::Thresholds {
                conf: 0.2,
                count: 4,
                area: 0.05,
            },
            quantile_scores: (0..12).map(|i| f64::from(i) / 11.0).collect(),
            examples: 48,
            accuracy: 0.9375,
            holdout: 16,
            divergence: 0.35,
        }
    }

    #[test]
    fn update_frame_round_trips_in_both_encodings() {
        let update = sample_update();
        for enc in [Encoding::Json, Encoding::Binary] {
            let frame = encode_frame_as(&update, enc);
            let back: crate::CalibrationUpdate = decode_frame_as(&frame, enc).unwrap();
            assert_eq!(back, update, "{enc}");
        }
        // Every field name of the update frame (and its nested thresholds)
        // is in the static dictionary, so the binary form beats JSON.
        let json = encode_frame_as(&update, Encoding::Json);
        let binary = encode_frame_as(&update, Encoding::Binary);
        assert!(
            binary.len() < json.len(),
            "binary {} should beat JSON {}",
            binary.len(),
            json.len()
        );
        // Cross-decoding with the wrong encoding is an error, not garbage.
        assert!(decode_frame_as::<crate::CalibrationUpdate>(&binary, Encoding::Json).is_err());
        assert!(decode_frame_as::<crate::CalibrationUpdate>(&json, Encoding::Binary).is_err());
    }

    #[test]
    fn update_frame_encodings_agree_with_serde_json_oracle() {
        // The JSON payload must be exactly what plain serde_json writes
        // (the frame layer adds only the length prefix), and the binary
        // payload must decode to the same value the JSON text does.
        let update = sample_update();
        let json = encode_frame_as(&update, Encoding::Json);
        assert_eq!(&json[4..], &serde_json::to_vec(&update).unwrap()[..]);
        let binary = encode_frame_as(&update, Encoding::Binary);
        let via_binary: crate::CalibrationUpdate =
            serde_json::from_slice_binary_with_dict(&binary[4..], BINARY_STATIC_KEYS).unwrap();
        let via_json: crate::CalibrationUpdate = serde_json::from_slice(&json[4..]).unwrap();
        assert_eq!(via_binary, via_json);
        assert_eq!(via_binary, update);
    }

    #[test]
    fn frame_reader_reassembles_update_frames_across_arbitrary_splits() {
        let frames: Vec<Bytes> = (0..4u64)
            .map(|v| {
                let mut u = sample_update();
                u.version = v;
                u.quantile_scores.truncate(v as usize * 3);
                encode_frame_as(&u, Encoding::Binary)
            })
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.iter().copied()).collect();
        for chunk_size in [1usize, 2, 3, 5, 7, 64] {
            let mut reader = FrameReader::new();
            let mut got = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                reader.feed(chunk);
                while let Some(p) = reader.next_frame().unwrap() {
                    got.push(p);
                }
            }
            assert_eq!(got.len(), frames.len(), "chunk_size {chunk_size}");
            for (v, (p, f)) in got.iter().zip(&frames).enumerate() {
                assert_eq!(&p[..], &f[4..], "chunk_size {chunk_size}");
                let update: crate::CalibrationUpdate =
                    serde_json::from_slice_binary_with_dict(p, BINARY_STATIC_KEYS).unwrap();
                assert_eq!(update.version, v as u64);
            }
            assert_eq!(reader.pending_bytes(), 0);
        }
    }
}
