//! Ground-truth difficulty labelling (Sec. V-A).
//!
//! "We define an image as a difficult case if the small model fails to detect
//! all the objects in it": operationally, both models run at the 0.5
//! confidence threshold and the image is difficult when the big model reports
//! at least one more object than the small model.

use crate::{CaseKind, SemanticFeatures, PREDICTION_THRESHOLD};
use datagen::{Dataset, Scene};
use modelzoo::Detector;
use serde::{Deserialize, Serialize};

/// One labelled training example for the discriminator (also the data behind
/// the paper's Fig. 4 scatter plot).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledExample {
    /// Scene id within its dataset.
    pub scene_id: u64,
    /// Ground-truth object count (Fig. 4's x-feature).
    pub true_count: usize,
    /// Ground-truth minimum object area ratio (Fig. 4's y-feature).
    pub true_min_area: Option<f64>,
    /// Semantic features extracted from the small model's raw output.
    pub features: SemanticFeatures,
    /// The difficulty label derived from the two models' outputs.
    pub label: CaseKind,
}

/// Labels one scene by comparing big- and small-model detection counts.
///
/// # Examples
///
/// ```
/// use datagen::{DatasetProfile, Scene, SplitId};
/// use modelzoo::{ModelKind, SimDetector};
/// use smallbig_core::label_scene;
///
/// let scene = Scene::sample(&DatasetProfile::voc(), 3, 0);
/// let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
/// let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
/// let example = label_scene(&scene, &small, &big, 0.2);
/// assert_eq!(example.true_count, scene.num_objects());
/// ```
pub fn label_scene(
    scene: &Scene,
    small: &dyn Detector,
    big: &dyn Detector,
    t_conf: f64,
) -> LabeledExample {
    label_scene_with(scene, &small.detect(scene), &big.detect(scene), t_conf)
}

/// [`label_scene`] over detections both models already produced for this
/// scene (detectors are deterministic, so the label is identical).
pub fn label_scene_with(
    scene: &Scene,
    small_dets: &detcore::ImageDetections,
    big_dets: &detcore::ImageDetections,
    t_conf: f64,
) -> LabeledExample {
    let n_small = small_dets.count_above(PREDICTION_THRESHOLD);
    let n_big = big_dets.count_above(PREDICTION_THRESHOLD);
    let label = if n_big > n_small {
        CaseKind::Difficult
    } else {
        CaseKind::Easy
    };
    LabeledExample {
        scene_id: scene.id,
        true_count: scene.num_objects(),
        true_min_area: scene.min_area_ratio(),
        features: SemanticFeatures::extract(small_dets, t_conf),
        label,
    }
}

/// Labels every scene of a dataset.
///
/// Labelling is per-scene pure, so the detection work fans out across the
/// harness workers (see [`crate::par`]) and merges back in dataset order —
/// the result is identical to the sequential loop.
pub fn label_dataset(
    dataset: &Dataset,
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
    t_conf: f64,
) -> Vec<LabeledExample> {
    label_dataset_with(dataset, &crate::detect_all(dataset, small, big), t_conf)
}

/// [`label_dataset`] over detections precomputed with
/// [`crate::detect_all`].
///
/// # Panics
///
/// Panics if `results` does not line up with the dataset.
pub fn label_dataset_with(
    dataset: &Dataset,
    results: &[(detcore::ImageDetections, detcore::ImageDetections)],
    t_conf: f64,
) -> Vec<LabeledExample> {
    let scenes = dataset.scenes();
    assert_eq!(
        scenes.len(),
        results.len(),
        "one detection pair per scene required"
    );
    scenes
        .iter()
        .zip(results)
        .map(|(scene, (s, b))| label_scene_with(scene, s, b, t_conf))
        .collect()
}

/// Fraction of difficult cases among labelled examples.
pub fn difficult_fraction(examples: &[LabeledExample]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    examples.iter().filter(|e| e.label.is_difficult()).count() as f64 / examples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::DatasetProfile;
    use modelzoo::{ModelKind, SimDetector};

    fn setup() -> (Dataset, SimDetector, SimDetector) {
        let ds = Dataset::generate("t", &DatasetProfile::voc(), 200, 42);
        let small = SimDetector::new(ModelKind::VggLiteSsd, datagen::SplitId::Voc07, 20);
        let big = SimDetector::new(ModelKind::SsdVgg16, datagen::SplitId::Voc07, 20);
        (ds, small, big)
    }

    #[test]
    fn labels_are_deterministic() {
        let (ds, small, big) = setup();
        let a = label_dataset(&ds, &small, &big, 0.2);
        let b = label_dataset(&ds, &small, &big, 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn a_reasonable_fraction_is_difficult() {
        let (ds, small, big) = setup();
        let examples = label_dataset(&ds, &small, &big, 0.2);
        let frac = difficult_fraction(&examples);
        // The paper's VOC numbers put the true difficult rate near 40-55 %.
        assert!(
            (0.2..=0.75).contains(&frac),
            "difficult fraction {frac} out of plausible band"
        );
    }

    #[test]
    fn difficult_cases_have_more_or_smaller_objects() {
        // Fig. 4's structure: difficult cases concentrate at high counts and
        // small minimum areas.
        let (ds, small, big) = setup();
        let examples = label_dataset(&ds, &small, &big, 0.2);
        let (mut d_count, mut d_n, mut e_count, mut e_n) = (0.0, 0, 0.0, 0);
        let (mut d_area, mut e_area) = (0.0, 0.0);
        for ex in &examples {
            let area = ex.true_min_area.unwrap_or(1.0);
            if ex.label.is_difficult() {
                d_count += ex.true_count as f64;
                d_area += area;
                d_n += 1;
            } else {
                e_count += ex.true_count as f64;
                e_area += area;
                e_n += 1;
            }
        }
        assert!(d_n > 0 && e_n > 0);
        let mean_d_count = d_count / d_n as f64;
        let mean_e_count = e_count / e_n as f64;
        let mean_d_area = d_area / d_n as f64;
        let mean_e_area = e_area / e_n as f64;
        assert!(
            mean_d_count > mean_e_count,
            "difficult {mean_d_count} vs easy {mean_e_count} objects"
        );
        assert!(
            mean_d_area < mean_e_area,
            "difficult {mean_d_area} vs easy {mean_e_area} min area"
        );
    }

    #[test]
    fn empty_examples_give_zero_fraction() {
        assert_eq!(difficult_fraction(&[]), 0.0);
    }
}
