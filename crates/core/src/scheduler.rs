//! The cloud-side scheduling control plane.
//!
//! PR 1 made the *data plane* pluggable: any [`crate::OffloadPolicy`] can
//! decide, frame by frame, what reaches the cloud. This module does the
//! same for the *control plane*: a [`Scheduler`] decides in what order —
//! and grouped into which batches — the frames that did reach the cloud
//! are served by the big model. The cloud worker
//! ([`crate::CloudServer`]) drives whichever scheduler its
//! [`crate::CloudConfig::scheduler`] names (or a custom boxed
//! implementation via [`crate::CloudServer::spawn_with`]).
//!
//! Three schedulers ship:
//!
//! * [`FifoBatcher`] — the default: serve in arrival order, dispatching as
//!   soon as `max_batch` frames wait. **Bit-identical** to the historical
//!   inline batching loop (pinned by `tests/api_equivalence.rs` and the
//!   conformance proptest in `tests/scheduling.rs`).
//! * [`DeadlineAware`] — earliest-deadline-first: frames carry their
//!   session's absolute deadline on the wire header, and each batch serves
//!   the tightest deadlines first. With `lookahead > 1` the scheduler
//!   holds back until several batches' worth of frames wait, so the
//!   ordering has something to choose from.
//! * [`DifficultyPriority`] — hardest cases first, ordered by the
//!   discriminator score the offload policy stamped on the frame header
//!   ([`crate::OffloadPolicy::difficulty`]); ties fall back to arrival
//!   order.
//!
//! Scheduling never draws randomness and observes only virtual time, so
//! any scheduler keeps runs deterministic; only [`FifoBatcher`] (with an
//! empty fault plan, no queue limit and no autoscaler) is additionally
//! *bit-identical* to the seed behaviour.
//!
//! [`AutoscaleConfig`] is the other half of the control plane: a
//! deterministic autoscaler that grows and shrinks the *wall-clock*
//! inference pool from the queue depth observed at each batch formation
//! and from [`simnet::FaultPlan`] stall windows on the virtual clock.
//! Scaling never touches virtual-time semantics — the batch's virtual
//! duration comes from the device model either way, and results merge in
//! queue order — so reports stay bit-identical for **any** scaling
//! trajectory (guarded by `tests/scheduling.rs`).

use datagen::Scene;
use std::borrow::Cow;
use std::sync::Arc;

use crate::server::SubmitRequest;

/// A frame waiting cloud-side for its batch: what a [`Scheduler`] orders.
///
/// Frames enter via [`Scheduler::push`] and leave via
/// [`Scheduler::take_batch`]; a scheduler reorders them but must neither
/// drop nor duplicate them. The accessors expose everything a scheduling
/// decision may use — arrival time, the policy's difficulty score, the
/// session deadline — all in *virtual* time. Cloning is cheap (the scene
/// payload is shared behind an [`Arc`]).
#[derive(Clone)]
pub struct QueuedFrame {
    pub(crate) req: SubmitRequest,
    pub(crate) scene: Arc<Scene>,
    pub(crate) uplink_s: f64,
    pub(crate) arrival: f64,
    pub(crate) seq: u64,
}

impl QueuedFrame {
    /// Id of the session that uploaded the frame.
    pub fn session(&self) -> u64 {
        self.req.session
    }

    /// The session-local ticket of the frame.
    pub fn ticket(&self) -> u64 {
        self.req.ticket
    }

    /// Virtual time at which the frame finished arriving at the cloud.
    pub fn arrival_s(&self) -> f64 {
        self.arrival
    }

    /// Difficulty score the offload policy stamped on the wire header
    /// (higher = harder; `0` when the policy does not score frames).
    pub fn difficulty(&self) -> f64 {
        self.req.difficulty
    }

    /// Absolute virtual deadline of the frame (`entered_at + deadline_s`),
    /// when its session has one.
    pub fn deadline_at(&self) -> Option<f64> {
        self.req.deadline_at
    }

    /// Cloud-side admission order: strictly increasing per server, the
    /// stable tie-breaker for priority schedulers.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Objects the uploading edge's small model predicted (score ≥ 0.5) —
    /// the edge half of the model-update loop's pseudo-label, also usable
    /// by custom schedulers as a crowding hint.
    pub fn small_count(&self) -> usize {
        self.req.small_count
    }

    /// A stand-alone frame for unit-testing custom [`Scheduler`]
    /// implementations outside a running [`crate::CloudServer`] (the
    /// payload is a placeholder scene; only the header fields matter to a
    /// scheduler).
    pub fn synthetic(
        session: u64,
        ticket: u64,
        arrival_s: f64,
        difficulty: f64,
        deadline_at: Option<f64>,
    ) -> QueuedFrame {
        QueuedFrame {
            req: SubmitRequest {
                session,
                ticket,
                frame_bytes: 0,
                sent_at: arrival_s,
                uplink_s: Some(0.0),
                difficulty,
                deadline_at,
                small_count: 0,
            },
            scene: Arc::new(Scene::sample(&datagen::DatasetProfile::helmet(), 0, ticket)),
            uplink_s: 0.0,
            arrival: arrival_s,
            seq: ticket,
        }
    }
}

impl std::fmt::Debug for QueuedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedFrame")
            .field("session", &self.req.session)
            .field("ticket", &self.req.ticket)
            .field("arrival_s", &self.arrival)
            .field("difficulty", &self.req.difficulty)
            .field("deadline_at", &self.req.deadline_at)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

/// A cloud-side batch scheduler: the object-safe control-plane extension
/// point, mirroring what [`crate::OffloadPolicy`] is for the data plane.
///
/// The cloud worker calls [`push`](Self::push) for every arriving frame,
/// then forms a batch whenever [`ready`](Self::ready) says so — and keeps
/// forming batches on flushes and shutdown until the queue is empty. A
/// scheduler therefore controls two things: *when* a batch forms (via
/// `ready`) and *which frames, in which order*, it contains (via
/// [`take_batch`](Self::take_batch)).
///
/// Implementations must be deterministic — order only by frame fields and
/// insertion order, never by wall-clock or randomness — or runs stop being
/// reproducible. They must also neither drop nor invent frames: every
/// pushed frame must eventually leave through `take_batch`.
///
/// # Examples
///
/// ```
/// use smallbig_core::{QueuedFrame, Scheduler};
/// use std::borrow::Cow;
///
/// /// Serve the *largest* tickets first (a toy LIFO-ish policy).
/// #[derive(Default)]
/// struct YoungestFirst(Vec<QueuedFrame>);
///
/// impl Scheduler for YoungestFirst {
///     fn name(&self) -> Cow<'static, str> {
///         Cow::Borrowed("youngest-first")
///     }
///     fn push(&mut self, frame: QueuedFrame) {
///         self.0.push(frame);
///     }
///     fn len(&self) -> usize {
///         self.0.len()
///     }
///     fn ready(&self, max_batch: usize) -> bool {
///         self.0.len() >= max_batch
///     }
///     fn take_batch(&mut self, max_batch: usize, out: &mut Vec<QueuedFrame>) {
///         out.clear();
///         self.0.sort_by_key(|f| std::cmp::Reverse(f.seq()));
///         out.extend(self.0.drain(..max_batch.min(self.0.len())));
///     }
/// }
///
/// let mut s = YoungestFirst::default();
/// s.push(QueuedFrame::synthetic(0, 1, 0.0, 0.0, None));
/// s.push(QueuedFrame::synthetic(0, 2, 0.1, 0.0, None));
/// let mut batch = Vec::new();
/// s.take_batch(1, &mut batch);
/// assert_eq!(batch[0].ticket(), 2);
/// ```
pub trait Scheduler: Send {
    /// Human-readable scheduler name for reports.
    fn name(&self) -> Cow<'static, str>;

    /// Admits one frame into the queue.
    fn push(&mut self, frame: QueuedFrame);

    /// Frames currently queued.
    fn len(&self) -> usize;

    /// `true` when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a batch should be dispatched now (asked after every
    /// admission). Flushes and shutdown dispatch regardless, so a
    /// scheduler that holds back — for a fuller queue to order — never
    /// strands frames.
    fn ready(&self, max_batch: usize) -> bool;

    /// Moves the next batch — at most `max_batch` frames, in service
    /// order — into `out` (cleared first). Called whenever `ready` fired
    /// or the worker is flushing; taking nothing while non-empty stops
    /// the current dispatch round (the worker never spins).
    fn take_batch(&mut self, max_batch: usize, out: &mut Vec<QueuedFrame>);
}

/// The default scheduler: first-in-first-out, dispatching as soon as
/// `max_batch` frames wait.
///
/// This is the historical inline batching loop behind an object-safe
/// seam: with the default [`crate::CloudConfig`] it reproduces the seed's
/// reports **bit for bit** (`tests/api_equivalence.rs` passes unchanged,
/// and the conformance proptest in `tests/scheduling.rs` pins the batch
/// partition against a transcription of the pre-refactor logic).
#[derive(Debug, Default)]
pub struct FifoBatcher {
    // A plain Vec: dispatch fires as soon as `max_batch` frames wait, so
    // the queue never grows past `max_batch` and `drain(..n)` never has a
    // tail to shift.
    queue: Vec<QueuedFrame>,
}

impl FifoBatcher {
    /// Creates an empty FIFO batcher.
    pub fn new() -> Self {
        FifoBatcher::default()
    }
}

impl Scheduler for FifoBatcher {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("fifo")
    }

    #[inline]
    fn push(&mut self, frame: QueuedFrame) {
        self.queue.push(frame);
    }

    #[inline]
    fn len(&self) -> usize {
        self.queue.len()
    }

    #[inline]
    fn ready(&self, max_batch: usize) -> bool {
        self.queue.len() >= max_batch
    }

    #[inline]
    fn take_batch(&mut self, max_batch: usize, out: &mut Vec<QueuedFrame>) {
        out.clear();
        let n = max_batch.min(self.queue.len());
        out.extend(self.queue.drain(..n));
    }
}

/// Shared core of the two priority schedulers: a queue that holds back
/// until `lookahead` batches' worth of frames wait, then serves the
/// `max_batch` best under `key` (ties broken by admission order).
#[derive(Debug)]
struct PriorityQueue {
    queue: Vec<QueuedFrame>,
    lookahead: usize,
}

impl PriorityQueue {
    fn new(lookahead: usize) -> Self {
        assert!(lookahead >= 1, "lookahead must be at least 1");
        PriorityQueue {
            queue: Vec::new(),
            lookahead,
        }
    }

    fn ready(&self, max_batch: usize) -> bool {
        self.queue.len() >= self.lookahead.saturating_mul(max_batch)
    }

    /// Takes the `max_batch` frames minimizing `key`, in key order.
    fn take_by<K: Fn(&QueuedFrame) -> f64>(
        &mut self,
        max_batch: usize,
        key: K,
        out: &mut Vec<QueuedFrame>,
    ) {
        out.clear();
        // Full sort per dispatch: the queue is bounded by
        // lookahead × max_batch, far below where a heap would matter, and
        // a total order keyed (key, seq) keeps the service order — and
        // therefore the whole run — deterministic.
        self.queue.sort_by(|a, b| {
            key(a)
                .partial_cmp(&key(b))
                .expect("scheduling keys are finite")
                .then(a.seq.cmp(&b.seq))
        });
        let n = max_batch.min(self.queue.len());
        out.extend(self.queue.drain(..n));
    }
}

/// Earliest-deadline-first batch formation.
///
/// Frames are ordered by the absolute deadline their session stamped on
/// the wire header ([`QueuedFrame::deadline_at`]); frames without a
/// deadline sort last, in arrival order. `lookahead` controls how many
/// batches' worth of frames the scheduler accumulates before dispatching:
/// `1` dispatches as eagerly as FIFO (the ordering then only matters on
/// flushes), larger values trade queueing delay for better ordering.
#[derive(Debug)]
pub struct DeadlineAware {
    inner: PriorityQueue,
}

impl DeadlineAware {
    /// Creates an EDF scheduler holding back `lookahead` batches.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero.
    pub fn new(lookahead: usize) -> Self {
        DeadlineAware {
            inner: PriorityQueue::new(lookahead),
        }
    }
}

impl Scheduler for DeadlineAware {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("deadline-aware")
    }

    fn push(&mut self, frame: QueuedFrame) {
        self.inner.queue.push(frame);
    }

    fn len(&self) -> usize {
        self.inner.queue.len()
    }

    fn ready(&self, max_batch: usize) -> bool {
        self.inner.ready(max_batch)
    }

    fn take_batch(&mut self, max_batch: usize, out: &mut Vec<QueuedFrame>) {
        self.inner
            .take_by(max_batch, |f| f.deadline_at().unwrap_or(f64::INFINITY), out);
    }
}

/// Hardest-cases-first batch formation.
///
/// Frames are ordered by the difficulty score the offload policy stamped
/// on the wire header ([`QueuedFrame::difficulty`], higher first) — the
/// AppealNet-style knob: *which* difficult cases reach the big model
/// first is itself policy. Ties (and unscored frames, which carry `0`)
/// fall back to arrival order. `lookahead` as in [`DeadlineAware`].
#[derive(Debug)]
pub struct DifficultyPriority {
    inner: PriorityQueue,
}

impl DifficultyPriority {
    /// Creates a difficulty-priority scheduler holding back `lookahead`
    /// batches.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero.
    pub fn new(lookahead: usize) -> Self {
        DifficultyPriority {
            inner: PriorityQueue::new(lookahead),
        }
    }
}

impl Scheduler for DifficultyPriority {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("difficulty-priority")
    }

    fn push(&mut self, frame: QueuedFrame) {
        self.inner.queue.push(frame);
    }

    fn len(&self) -> usize {
        self.inner.queue.len()
    }

    fn ready(&self, max_batch: usize) -> bool {
        self.inner.ready(max_batch)
    }

    fn take_batch(&mut self, max_batch: usize, out: &mut Vec<QueuedFrame>) {
        self.inner.take_by(max_batch, |f| -f.difficulty(), out);
    }
}

/// Declarative scheduler choice for [`crate::CloudConfig`] (the
/// `Clone`-able configuration form; [`CloudServer::spawn_with`] accepts a
/// custom boxed [`Scheduler`] instead).
///
/// [`CloudServer::spawn_with`]: crate::CloudServer::spawn_with
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SchedulerConfig {
    /// Arrival order, dispatch at `max_batch` ([`FifoBatcher`]) — the
    /// bit-identical default.
    #[default]
    Fifo,
    /// Earliest-deadline-first ([`DeadlineAware`]).
    DeadlineAware {
        /// Batches' worth of frames to accumulate before dispatching.
        lookahead: usize,
    },
    /// Hardest cases first ([`DifficultyPriority`]).
    DifficultyPriority {
        /// Batches' worth of frames to accumulate before dispatching.
        lookahead: usize,
    },
}

impl SchedulerConfig {
    /// Builds the configured scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerConfig::Fifo => Box::new(FifoBatcher::new()),
            SchedulerConfig::DeadlineAware { lookahead } => Box::new(DeadlineAware::new(lookahead)),
            SchedulerConfig::DifficultyPriority { lookahead } => {
                Box::new(DifficultyPriority::new(lookahead))
            }
        }
    }

    /// The configured scheduler's name (for reports).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerConfig::Fifo => "fifo",
            SchedulerConfig::DeadlineAware { .. } => "deadline-aware",
            SchedulerConfig::DifficultyPriority { .. } => "difficulty-priority",
        }
    }
}

/// The cloud worker's scheduler seam, with a monomorphized fast path.
///
/// The default [`FifoBatcher`] is held *concretely*: every `push`/`ready`/
/// `take_batch` on the default path is a statically dispatched (and
/// inlinable) call into the plain `Vec` FIFO, so the control-plane seam
/// costs nothing unless a deployment actually plugs in a custom scheduler —
/// those keep the object-safe boxed form. `BENCH_PR5` measured the boxed
/// seam at ~10 ns/frame over the historical inline loop; this enum closes
/// that gap for the configuration every test and deployment defaults to.
pub(crate) enum SchedulerSlot {
    /// The default FIFO, statically dispatched.
    Fifo(FifoBatcher),
    /// Any other scheduler, behind the object-safe seam.
    Custom(Box<dyn Scheduler>),
}

impl SchedulerSlot {
    /// Builds the slot for a declarative config: the default FIFO gets the
    /// monomorphized fast path, everything else the boxed seam.
    pub(crate) fn from_config(config: &SchedulerConfig) -> SchedulerSlot {
        match config {
            SchedulerConfig::Fifo => SchedulerSlot::Fifo(FifoBatcher::new()),
            other => SchedulerSlot::Custom(other.build()),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, frame: QueuedFrame) {
        match self {
            SchedulerSlot::Fifo(f) => f.push(frame),
            SchedulerSlot::Custom(s) => s.push(frame),
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            SchedulerSlot::Fifo(f) => Scheduler::len(f),
            SchedulerSlot::Custom(s) => s.len(),
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        match self {
            SchedulerSlot::Fifo(f) => Scheduler::is_empty(f),
            SchedulerSlot::Custom(s) => s.is_empty(),
        }
    }

    #[inline]
    pub(crate) fn ready(&self, max_batch: usize) -> bool {
        match self {
            SchedulerSlot::Fifo(f) => f.ready(max_batch),
            SchedulerSlot::Custom(s) => s.ready(max_batch),
        }
    }

    #[inline]
    pub(crate) fn take_batch(&mut self, max_batch: usize, out: &mut Vec<QueuedFrame>) {
        match self {
            SchedulerSlot::Fifo(f) => f.take_batch(max_batch, out),
            SchedulerSlot::Custom(s) => s.take_batch(max_batch, out),
        }
    }
}

/// Deterministic autoscaling of the cloud's inference pool.
///
/// At every batch formation the autoscaler observes the queue depth (the
/// batch plus everything still waiting) and whether the batch's start
/// instant falls inside a [`simnet::FaultPlan`] stall window, and sets the
/// number of *active* wall-clock workers to
/// `ceil(depth / frames_per_worker)`, clamped to
/// `[min_workers, CloudConfig::workers]` — except during a stall, where it
/// parks the pool at `min_workers` (the server cannot start batches
/// anyway). Both inputs are virtual-time state, so the whole scaling
/// trajectory is deterministic and is reported in
/// [`crate::CloudStats::peak_workers`] /
/// [`crate::CloudStats::scale_changes`].
///
/// Scaling affects wall-clock dispatch width only — never virtual time —
/// so session reports are bit-identical for any trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AutoscaleConfig {
    /// Queued frames each active worker is expected to absorb; the pool
    /// grows one worker per this many waiting frames.
    pub frames_per_worker: usize,
    /// Floor on active workers (also the stall-window parking level).
    pub min_workers: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            frames_per_worker: 4,
            min_workers: 1,
        }
    }
}

impl AutoscaleConfig {
    /// Panics with a config error if a field is out of range — called at
    /// [`crate::CloudServer::spawn`] time so a bad configuration fails on
    /// the caller's thread instead of killing the cloud worker at its
    /// first batch.
    pub(crate) fn assert_valid(&self) {
        assert!(
            self.frames_per_worker >= 1,
            "frames_per_worker must be at least 1"
        );
        assert!(self.min_workers >= 1, "min_workers must be at least 1");
    }

    /// The worker count desired for `depth` queued frames at an instant
    /// that is (`stalled`) or is not inside a stall window, with the pool
    /// capped at `max_workers`.
    pub fn desired_workers(&self, depth: usize, stalled: bool, max_workers: usize) -> usize {
        self.assert_valid();
        let floor = self.min_workers.min(max_workers);
        if stalled {
            return floor;
        }
        depth
            .div_ceil(self.frames_per_worker)
            .clamp(floor, max_workers.max(1))
    }
}

/// Runtime state of the autoscaler inside the cloud worker.
#[derive(Debug)]
pub(crate) struct Autoscaler {
    cfg: AutoscaleConfig,
    max_workers: usize,
    active: usize,
    pub(crate) peak: usize,
    pub(crate) changes: usize,
}

impl Autoscaler {
    pub(crate) fn new(cfg: AutoscaleConfig, max_workers: usize) -> Self {
        let active = cfg.min_workers.min(max_workers).max(1);
        Autoscaler {
            cfg,
            max_workers,
            active,
            peak: active,
            changes: 0,
        }
    }

    /// Observes one batch formation and returns the active worker count.
    pub(crate) fn observe(&mut self, depth: usize, stalled: bool) -> usize {
        let desired = self.cfg.desired_workers(depth, stalled, self.max_workers);
        if desired != self.active {
            self.active = desired;
            self.changes += 1;
        }
        self.peak = self.peak.max(self.active);
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(specs: &[(u64, f64, f64, Option<f64>)]) -> Vec<QueuedFrame> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(ticket, arrival, difficulty, deadline))| {
                let mut f = QueuedFrame::synthetic(0, ticket, arrival, difficulty, deadline);
                f.seq = i as u64;
                f
            })
            .collect()
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut s = FifoBatcher::new();
        for f in frames(&[
            (3, 0.0, 9.0, None),
            (1, 0.1, 0.0, None),
            (2, 0.2, 5.0, None),
        ]) {
            s.push(f);
        }
        assert!(s.ready(3));
        assert!(!s.ready(4));
        let mut out = Vec::new();
        s.take_batch(2, &mut out);
        let tickets: Vec<u64> = out.iter().map(|f| f.ticket()).collect();
        assert_eq!(tickets, vec![3, 1]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn deadline_aware_serves_tightest_deadline_first() {
        let mut s = DeadlineAware::new(2);
        for f in frames(&[
            (0, 0.0, 0.0, Some(9.0)),
            (1, 0.1, 0.0, None),
            (2, 0.2, 0.0, Some(1.5)),
            (3, 0.3, 0.0, Some(4.0)),
        ]) {
            s.push(f);
        }
        // Holds back until lookahead × max_batch frames wait.
        assert!(!s.ready(3));
        assert!(s.ready(2));
        let mut out = Vec::new();
        s.take_batch(3, &mut out);
        let tickets: Vec<u64> = out.iter().map(|f| f.ticket()).collect();
        assert_eq!(tickets, vec![2, 3, 0], "EDF order, deadline-less last");
        s.take_batch(3, &mut out);
        assert_eq!(out[0].ticket(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn difficulty_priority_serves_hardest_first_with_fifo_ties() {
        let mut s = DifficultyPriority::new(1);
        for f in frames(&[
            (0, 0.0, 1.0, None),
            (1, 0.1, 7.0, None),
            (2, 0.2, 1.0, None),
            (3, 0.3, 3.0, None),
        ]) {
            s.push(f);
        }
        let mut out = Vec::new();
        s.take_batch(4, &mut out);
        let tickets: Vec<u64> = out.iter().map(|f| f.ticket()).collect();
        assert_eq!(tickets, vec![1, 3, 0, 2], "score desc, ties in seq order");
    }

    #[test]
    fn scheduler_config_builds_the_named_scheduler() {
        for cfg in [
            SchedulerConfig::Fifo,
            SchedulerConfig::DeadlineAware { lookahead: 2 },
            SchedulerConfig::DifficultyPriority { lookahead: 3 },
        ] {
            assert_eq!(cfg.build().name(), cfg.name());
        }
        assert_eq!(SchedulerConfig::default(), SchedulerConfig::Fifo);
    }

    #[test]
    fn autoscaler_tracks_depth_and_parks_on_stalls() {
        let cfg = AutoscaleConfig {
            frames_per_worker: 2,
            min_workers: 1,
        };
        let mut a = Autoscaler::new(cfg, 4);
        assert_eq!(a.observe(1, false), 1);
        assert_eq!(a.observe(5, false), 3);
        assert_eq!(a.observe(100, false), 4, "clamped to the pool size");
        assert_eq!(a.observe(100, true), 1, "stall parks at min_workers");
        assert_eq!(a.observe(2, false), 1);
        assert_eq!(a.peak, 4);
        assert_eq!(a.changes, 3);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_rejected() {
        let _ = DeadlineAware::new(0);
    }
}
