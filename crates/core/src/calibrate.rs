//! Threshold calibration (Sec. V-D): the paper's training procedure.
//!
//! 1. The confidence (noise-filter) threshold minimises
//!    `L = Σ |N_predict − N_truth|` over the training set (Eq. 1).
//! 2. The count and area thresholds maximise accuracy of the difficulty
//!    prediction computed from *ground-truth* features against the labels
//!    from [`crate::label_dataset`].

use crate::{CaseKind, DifficultCaseDiscriminator, LabeledExample, Thresholds};
use datagen::Dataset;
use modelzoo::Detector;
use serde::{Deserialize, Serialize};

/// Binary-classification quality metrics (difficult = positive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryStats {
    /// (TP + TN) / all.
    pub accuracy: f64,
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall (the paper's "hm").
    pub f1: f64,
    /// Fraction of examples predicted positive (the upload ratio this
    /// discriminator would produce).
    pub predicted_positive_rate: f64,
}

impl BinaryStats {
    /// Computes stats from paired (predicted, actual) outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (CaseKind, CaseKind)>) -> BinaryStats {
        let (mut tp, mut fp, mut tn, mut fn_) = (0usize, 0usize, 0usize, 0usize);
        for (pred, actual) in pairs {
            match (pred.is_difficult(), actual.is_difficult()) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, false) => tn += 1,
                (false, true) => fn_ += 1,
            }
        }
        let total = tp + fp + tn + fn_;
        assert!(total > 0, "cannot compute stats over zero examples");
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        BinaryStats {
            accuracy: (tp + tn) as f64 / total as f64,
            precision,
            recall,
            f1,
            predicted_positive_rate: (tp + fp) as f64 / total as f64,
        }
    }
}

/// Result of the full calibration procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The calibrated thresholds.
    pub thresholds: Thresholds,
    /// Counting loss `Σ|N_est − N_true|` at the chosen confidence threshold.
    pub counting_loss: u64,
    /// Training-set stats of the (count, area) rule on ground-truth features
    /// (the paper's Table I "Ground Truth" row).
    pub train_stats: BinaryStats,
}

/// Calibrates the noise-filter confidence threshold by scanning
/// `(0.05..=0.45)` and minimising Eq. 1's loss.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn calibrate_conf_threshold(dataset: &Dataset, small: &dyn Detector) -> (f64, u64) {
    assert!(!dataset.is_empty(), "cannot calibrate on an empty dataset");
    // Collect per-image (sorted scores, true count) once.
    let per_image: Vec<(Vec<f64>, usize)> = dataset
        .iter()
        .map(|scene| {
            let dets = small.detect(scene);
            let mut scores: Vec<f64> = dets.iter().map(|d| d.score()).collect();
            scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
            (scores, scene.num_objects())
        })
        .collect();
    let mut best = (0.20, u64::MAX);
    let mut t = 0.05;
    while t <= 0.451 {
        let mut loss = 0u64;
        for (scores, n_true) in &per_image {
            // count of scores >= t via binary search on the sorted vec
            let idx = scores.partition_point(|&s| s < t);
            let n_est = scores.len() - idx;
            loss += n_est.abs_diff(*n_true) as u64;
        }
        if loss < best.1 {
            best = (t, loss);
        }
        t += 0.01;
    }
    best
}

/// Grid-searches the count and area thresholds on ground-truth features,
/// maximising accuracy against the difficulty labels (Sec. V-D).
pub fn calibrate_count_area(examples: &[LabeledExample]) -> (usize, f64, BinaryStats) {
    assert!(!examples.is_empty(), "cannot calibrate on zero examples");
    let mut best: Option<(usize, f64, BinaryStats)> = None;
    for count in 1..=6usize {
        let mut area = 0.01;
        while area <= 0.61 {
            let disc = DifficultCaseDiscriminator::new(Thresholds {
                conf: 0.2, // irrelevant for true-feature classification
                count,
                area,
            });
            let stats = BinaryStats::from_pairs(examples.iter().map(|e| {
                (
                    disc.classify_true_features(e.true_count, e.true_min_area),
                    e.label,
                )
            }));
            let better = match &best {
                None => true,
                Some((_, _, b)) => stats.accuracy > b.accuracy,
            };
            if better {
                best = Some((count, area, stats));
            }
            area += 0.02;
        }
    }
    let (c, a, s) = best.expect("grid is non-empty");
    (c, a, s)
}

/// Runs the complete calibration: confidence threshold by regression, then
/// count/area thresholds by grid search over labelled training data.
pub fn calibrate(
    train: &Dataset,
    small: &dyn Detector,
    big: &dyn Detector,
) -> (Calibration, Vec<LabeledExample>) {
    let (conf, counting_loss) = calibrate_conf_threshold(train, small);
    let examples = crate::label_dataset(train, small, big, conf);
    let (count, area, train_stats) = calibrate_count_area(&examples);
    (
        Calibration {
            thresholds: Thresholds { conf, count, area },
            counting_loss,
            train_stats,
        },
        examples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{DatasetProfile, SplitId};
    use modelzoo::{ModelKind, SimDetector};

    fn setup() -> (Dataset, SimDetector, SimDetector) {
        let ds = Dataset::generate("t", &DatasetProfile::voc(), 300, 5);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        (ds, small, big)
    }

    #[test]
    fn binary_stats_hand_example() {
        use CaseKind::{Difficult as D, Easy as E};
        // pred, actual: TP, TP, FP, FN, TN
        let s = BinaryStats::from_pairs(vec![(D, D), (D, D), (D, E), (E, D), (E, E)]);
        assert!((s.accuracy - 0.6).abs() < 1e-12);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.predicted_positive_rate - 0.6).abs() < 1e-12);
    }

    #[test]
    fn conf_threshold_lands_in_paper_band() {
        let (ds, small, _) = setup();
        let (t, loss) = calibrate_conf_threshold(&ds, &small);
        // The paper reports the useful band as 0.15–0.35.
        assert!(
            (0.10..=0.40).contains(&t),
            "calibrated t_conf {t} outside plausible band"
        );
        assert!(loss < ds.total_objects() as u64, "loss should beat trivial");
    }

    #[test]
    fn count_area_grid_prefers_discriminative_thresholds() {
        let (ds, small, big) = setup();
        let (cal, examples) = calibrate(&ds, &small, &big);
        assert!(!examples.is_empty());
        // Sanity: training accuracy must beat the majority-class baseline.
        let frac = crate::difficult_fraction(&examples);
        let majority = frac.max(1.0 - frac);
        assert!(
            cal.train_stats.accuracy >= majority - 0.02,
            "grid accuracy {} vs majority {majority}",
            cal.train_stats.accuracy
        );
        assert!((1..=6).contains(&cal.thresholds.count));
        assert!(cal.thresholds.area > 0.0 && cal.thresholds.area < 0.62);
    }

    #[test]
    fn calibration_is_deterministic() {
        let (ds, small, big) = setup();
        let (a, _) = calibrate(&ds, &small, &big);
        let (b, _) = calibrate(&ds, &small, &big);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_examples_panic() {
        let _ = calibrate_count_area(&[]);
    }
}
