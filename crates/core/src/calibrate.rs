//! Threshold calibration (Sec. V-D): the paper's training procedure.
//!
//! 1. The confidence (noise-filter) threshold minimises
//!    `L = Σ |N_predict − N_truth|` over the training set (Eq. 1).
//! 2. The count and area thresholds maximise accuracy of the difficulty
//!    prediction computed from *ground-truth* features against the labels
//!    from [`crate::label_dataset`].

use crate::{CaseKind, DifficultCaseDiscriminator, LabeledExample, Thresholds};
use datagen::Dataset;
use modelzoo::Detector;
use serde::{Deserialize, Serialize};

/// Binary-classification quality metrics (difficult = positive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryStats {
    /// (TP + TN) / all.
    pub accuracy: f64,
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall (the paper's "hm").
    pub f1: f64,
    /// Fraction of examples predicted positive (the upload ratio this
    /// discriminator would produce).
    pub predicted_positive_rate: f64,
}

impl BinaryStats {
    /// Computes stats from paired (predicted, actual) outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (CaseKind, CaseKind)>) -> BinaryStats {
        let (mut tp, mut fp, mut tn, mut fn_) = (0usize, 0usize, 0usize, 0usize);
        for (pred, actual) in pairs {
            match (pred.is_difficult(), actual.is_difficult()) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, false) => tn += 1,
                (false, true) => fn_ += 1,
            }
        }
        let total = tp + fp + tn + fn_;
        assert!(total > 0, "cannot compute stats over zero examples");
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        BinaryStats {
            accuracy: (tp + tn) as f64 / total as f64,
            precision,
            recall,
            f1,
            predicted_positive_rate: (tp + fp) as f64 / total as f64,
        }
    }
}

/// Result of the full calibration procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The calibrated thresholds.
    pub thresholds: Thresholds,
    /// Counting loss `Σ|N_est − N_true|` at the chosen confidence threshold.
    pub counting_loss: u64,
    /// Training-set stats of the (count, area) rule on ground-truth features
    /// (the paper's Table I "Ground Truth" row).
    pub train_stats: BinaryStats,
}

/// Calibrates the noise-filter confidence threshold by scanning
/// `(0.05..=0.45)` and minimising Eq. 1's loss.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn calibrate_conf_threshold(dataset: &Dataset, small: &(dyn Detector + Sync)) -> (f64, u64) {
    assert!(!dataset.is_empty(), "cannot calibrate on an empty dataset");
    // Fan the detection work out across the harness workers (dataset order).
    let scenes = dataset.scenes();
    let dets: Vec<detcore::ImageDetections> =
        crate::par::ordered_map(scenes.len(), |i| small.detect(&scenes[i]));
    conf_threshold_from(score_profiles(
        dets.iter().zip(scenes.iter().map(|s| s.num_objects())),
    ))
}

/// Flat (structure-of-arrays) per-image score profiles: every image's
/// scores sorted ascending in one buffer, with offsets and true counts.
struct ScoreProfiles {
    scores: Vec<f64>,
    /// `num_images + 1` offsets into `scores`.
    offsets: Vec<u32>,
    true_counts: Vec<u32>,
}

fn score_profiles<'a>(
    images: impl Iterator<Item = (&'a detcore::ImageDetections, usize)>,
) -> ScoreProfiles {
    let mut profiles = ScoreProfiles {
        scores: Vec::new(),
        offsets: vec![0],
        true_counts: Vec::new(),
    };
    for (dets, n_true) in images {
        let start = profiles.scores.len();
        profiles.scores.extend(dets.iter().map(|d| d.score()));
        profiles.scores[start..].sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        profiles.offsets.push(profiles.scores.len() as u32);
        profiles.true_counts.push(n_true as u32);
    }
    profiles
}

/// Eq. 1's threshold scan.
///
/// The seed scanned thresholds in the outer loop with one binary search per
/// (threshold, image) pair; this sweeps each image's ascending scores once
/// against the ascending threshold grid with a moving pointer. Per-image
/// loss terms are integers, so accumulating per image instead of per
/// threshold produces the same 41 loss sums exactly, and the
/// strictly-smaller selection over the same threshold order picks the same
/// `(threshold, loss)`.
fn conf_threshold_from(profiles: ScoreProfiles) -> (f64, u64) {
    let thresholds: Vec<f64> = {
        let mut v = Vec::new();
        let mut t = 0.05;
        while t <= 0.451 {
            v.push(t);
            t += 0.01;
        }
        v
    };
    let mut losses = vec![0u64; thresholds.len()];
    for img in 0..profiles.true_counts.len() {
        let scores =
            &profiles.scores[profiles.offsets[img] as usize..profiles.offsets[img + 1] as usize];
        let n_true = profiles.true_counts[img] as usize;
        // `idx` tracks `partition_point(|s| s < t)` as `t` ascends.
        let mut idx = 0usize;
        for (ti, &t) in thresholds.iter().enumerate() {
            while idx < scores.len() && scores[idx] < t {
                idx += 1;
            }
            let n_est = scores.len() - idx;
            losses[ti] += n_est.abs_diff(n_true) as u64;
        }
    }
    let mut best = (0.20, u64::MAX);
    for (&t, &loss) in thresholds.iter().zip(&losses) {
        if loss < best.1 {
            best = (t, loss);
        }
    }
    best
}

/// Grid-searches the count and area thresholds on ground-truth features,
/// maximising accuracy against the difficulty labels (Sec. V-D).
///
/// The naive grid re-classifies every example for all `6 × 31` cells; this
/// version visits the same cells in the same order but, for each count
/// threshold, sorts the not-count-difficult examples by minimum area once
/// and reads every area cell's confusion counts off prefix sums. The
/// winning cell and its [`BinaryStats`] are identical to the naive scan
/// (the accuracy of each cell is the same integer-count division, and the
/// strictly-greater tie-break is evaluated in the same cell order); the
/// naive implementation stays in the tests as the oracle.
pub fn calibrate_count_area(examples: &[LabeledExample]) -> (usize, f64, BinaryStats) {
    assert!(!examples.is_empty(), "cannot calibrate on zero examples");
    let total = examples.len();
    let positives = examples.iter().filter(|e| e.label.is_difficult()).count();

    // `classify_true_features` treats a missing minimum area as
    // never-difficult-by-area; +inf encodes that (no finite threshold
    // exceeds it).
    let mut best: Option<(usize, f64, f64)> = None; // (count, area, accuracy)
    let mut rest: Vec<(f64, bool)> = Vec::with_capacity(total);
    for count in 1..=6usize {
        // Examples with more objects than the threshold are predicted
        // difficult regardless of area.
        let mut count_tp = 0usize;
        let mut count_fp = 0usize;
        rest.clear();
        for e in examples {
            if e.true_count > count {
                if e.label.is_difficult() {
                    count_tp += 1;
                } else {
                    count_fp += 1;
                }
            } else {
                let area = e.true_min_area.unwrap_or(f64::INFINITY);
                rest.push((area, e.label.is_difficult()));
            }
        }
        rest.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite or inf areas"));
        // prefix_pos[i] = difficult labels among the i smallest-area rest.
        let mut prefix_pos = Vec::with_capacity(rest.len() + 1);
        prefix_pos.push(0usize);
        for (_, difficult) in &rest {
            prefix_pos.push(prefix_pos.last().unwrap() + usize::from(*difficult));
        }

        let mut area = 0.01;
        while area <= 0.61 {
            // Among `rest`, predicted difficult iff min_area < threshold.
            let below = rest.partition_point(|&(a, _)| a < area);
            let tp = count_tp + prefix_pos[below];
            let fp = count_fp + (below - prefix_pos[below]);
            let fn_ = positives - tp;
            let tn = total - tp - fp - fn_;
            let accuracy = (tp + tn) as f64 / total as f64;
            let better = match &best {
                None => true,
                Some((_, _, b)) => accuracy > *b,
            };
            if better {
                best = Some((count, area, accuracy));
            }
            area += 0.02;
        }
    }
    let (count, area, _) = best.expect("grid is non-empty");
    // Full stats for the winning cell only (identical to what the naive
    // scan stored when it visited that cell).
    let disc = DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.2, // irrelevant for true-feature classification
        count,
        area,
    });
    let stats = BinaryStats::from_pairs(examples.iter().map(|e| {
        (
            disc.classify_true_features(e.true_count, e.true_min_area),
            e.label,
        )
    }));
    (count, area, stats)
}

/// Runs the complete calibration: confidence threshold by regression, then
/// count/area thresholds by grid search over labelled training data.
pub fn calibrate(
    train: &Dataset,
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
) -> (Calibration, Vec<LabeledExample>) {
    assert!(!train.is_empty(), "cannot calibrate on an empty dataset");
    // One (parallel) detection pass over the training set feeds both the
    // confidence-threshold scan and the difficulty labelling; the detectors
    // are deterministic, so results equal the two-pass form exactly.
    let results = crate::detect_all(train, small, big);
    let scenes = train.scenes();
    let (conf, counting_loss) = conf_threshold_from(score_profiles(
        scenes
            .iter()
            .zip(&results)
            .map(|(scene, (small_dets, _))| (small_dets, scene.num_objects())),
    ));
    let examples = crate::label_dataset_with(train, &results, conf);
    let (count, area, train_stats) = calibrate_count_area(&examples);
    (
        Calibration {
            thresholds: Thresholds { conf, count, area },
            counting_loss,
            train_stats,
        },
        examples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{DatasetProfile, SplitId};
    use modelzoo::{ModelKind, SimDetector};

    fn setup() -> (Dataset, SimDetector, SimDetector) {
        let ds = Dataset::generate("t", &DatasetProfile::voc(), 300, 5);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        (ds, small, big)
    }

    /// The naive 186-cell grid scan (the pre-refactor implementation),
    /// kept as the oracle for the prefix-sum version.
    fn naive_count_area(examples: &[LabeledExample]) -> (usize, f64, BinaryStats) {
        let mut best: Option<(usize, f64, BinaryStats)> = None;
        for count in 1..=6usize {
            let mut area = 0.01;
            while area <= 0.61 {
                let disc = DifficultCaseDiscriminator::new(Thresholds {
                    conf: 0.2,
                    count,
                    area,
                });
                let stats = BinaryStats::from_pairs(examples.iter().map(|e| {
                    (
                        disc.classify_true_features(e.true_count, e.true_min_area),
                        e.label,
                    )
                }));
                let better = match &best {
                    None => true,
                    Some((_, _, b)) => stats.accuracy > b.accuracy,
                };
                if better {
                    best = Some((count, area, stats));
                }
                area += 0.02;
            }
        }
        best.expect("grid is non-empty")
    }

    #[test]
    fn count_area_grid_matches_naive_oracle() {
        let (ds, small, big) = setup();
        let examples = crate::label_dataset(&ds, &small, &big, 0.2);
        let (count, area, stats) = calibrate_count_area(&examples);
        let (count_ref, area_ref, stats_ref) = naive_count_area(&examples);
        assert_eq!(count, count_ref);
        assert_eq!(area.to_bits(), area_ref.to_bits());
        assert_eq!(stats, stats_ref);

        // Edge shapes: missing min areas and all-one-label sets.
        let degenerate: Vec<LabeledExample> = examples
            .iter()
            .map(|e| LabeledExample {
                true_min_area: None,
                ..*e
            })
            .collect();
        let fast = calibrate_count_area(&degenerate);
        let naive = naive_count_area(&degenerate);
        assert_eq!((fast.0, fast.1.to_bits()), (naive.0, naive.1.to_bits()));
        assert_eq!(fast.2, naive.2);
    }

    #[test]
    fn binary_stats_hand_example() {
        use CaseKind::{Difficult as D, Easy as E};
        // pred, actual: TP, TP, FP, FN, TN
        let s = BinaryStats::from_pairs(vec![(D, D), (D, D), (D, E), (E, D), (E, E)]);
        assert!((s.accuracy - 0.6).abs() < 1e-12);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.predicted_positive_rate - 0.6).abs() < 1e-12);
    }

    #[test]
    fn conf_threshold_lands_in_paper_band() {
        let (ds, small, _) = setup();
        let (t, loss) = calibrate_conf_threshold(&ds, &small);
        // The paper reports the useful band as 0.15–0.35.
        assert!(
            (0.10..=0.40).contains(&t),
            "calibrated t_conf {t} outside plausible band"
        );
        assert!(loss < ds.total_objects() as u64, "loss should beat trivial");
    }

    #[test]
    fn count_area_grid_prefers_discriminative_thresholds() {
        let (ds, small, big) = setup();
        let (cal, examples) = calibrate(&ds, &small, &big);
        assert!(!examples.is_empty());
        // Sanity: training accuracy must beat the majority-class baseline.
        let frac = crate::difficult_fraction(&examples);
        let majority = frac.max(1.0 - frac);
        assert!(
            cal.train_stats.accuracy >= majority - 0.02,
            "grid accuracy {} vs majority {majority}",
            cal.train_stats.accuracy
        );
        assert!((1..=6).contains(&cal.thresholds.count));
        assert!(cal.thresholds.area > 0.0 && cal.thresholds.area < 0.62);
    }

    #[test]
    fn calibration_is_deterministic() {
        let (ds, small, big) = setup();
        let (a, _) = calibrate(&ds, &small, &big);
        let (b, _) = calibrate(&ds, &small, &big);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_examples_panic() {
        let _ = calibrate_count_area(&[]);
    }
}
