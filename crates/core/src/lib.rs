//! # smallbig-core — the small-big model framework
//!
//! The paper's contribution (*Edge-Cloud Collaborated Object Detection via
//! Difficult-Case Discriminator*, ICDCS 2023), implemented end to end and
//! grown into a streaming multi-edge serving system.
//!
//! ## The discriminator (the paper)
//!
//! * [`SemanticFeatures`] — the two semantic features read off the small
//!   model's raw output,
//! * [`DifficultCaseDiscriminator`] — the three-threshold decision model,
//! * [`label_scene`] / [`label_dataset`] — ground-truth difficulty labels,
//! * [`calibrate`] — the paper's threshold-training procedure (Eq. 1
//!   regression + grid search),
//! * [`evaluate`] — batch evaluation producing the paper's table metrics.
//!
//! ## Offload strategies
//!
//! * [`OffloadPolicy`] — the object-safe extension point: anything that can
//!   route one frame at a time. Implement it to plug custom strategies into
//!   the runtime without touching this crate.
//! * [`Policy`] — the concrete catalogue: ours plus every baseline (random /
//!   blurred / top-1 confidence / cloud-only / edge-only / oracle), with
//!   [`Policy::decide_all`] for the paper's whole-test-set batch protocol
//!   and [`Policy::into_stream`] for the streaming form ([`QuantileStream`]
//!   gives the quantile baselines an online meaning).
//!
//! ## The streaming runtime
//!
//! * [`CloudServer`] — a cloud worker serving any number of edges, with a
//!   pluggable [`Scheduler`] that batches big-model inference across
//!   sessions ([`FifoBatcher`] by default — bit-identical to the
//!   historical inline loop; [`DeadlineAware`] and [`DifficultyPriority`]
//!   reorder batches; [`CloudConfig::queue_limit`] adds admission control
//!   and [`CloudConfig::autoscale`] a deterministic autoscaler),
//! * [`EdgeSession`] — one edge device: own virtual clock, own
//!   [`simnet::LinkModel`], own RNG stream, own policy;
//!   [`EdgeSession::submit`] / [`EdgeSession::poll`] /
//!   [`EdgeSession::drain`] stream frames through it,
//! * [`run_system`] — the legacy one-edge batch entry point, now a thin
//!   wrapper over a single-session [`CloudServer`] (bit-identical reports),
//! * [`wire`] — the length-prefixed frame format actually shipped between
//!   the edge and cloud threads ([`wire::FrameReader`] reassembles it
//!   incrementally from arbitrary byte chunks),
//! * [`transport`] — the same session protocol over a real byte stream:
//!   object-safe [`Transport`](transport::Transport) /
//!   [`Listener`](transport::Listener) seams, a versioned handshake,
//!   in-memory and TCP implementations, [`transport::serve`] on the cloud
//!   side and [`transport::RemoteCloud`] on the edge side — sessions over
//!   loopback TCP stay bit-identical to the in-process channel path,
//! * [`par`] — the deterministic fan-out the harness uses: pure per-image
//!   work spreads over worker threads and merges back in order, so every
//!   report stays bit-identical to a sequential run (`CloudConfig::workers`
//!   gives the cloud server the same property for big-model inference).
//!
//! # Batch example (the paper's protocol)
//!
//! ```
//! use datagen::{Split, SplitId};
//! use modelzoo::{ModelKind, SimDetector};
//! use smallbig_core::{calibrate, evaluate, EvalConfig, Policy,
//!                     DifficultCaseDiscriminator};
//!
//! let split = Split::load_scaled(SplitId::Voc07, 0.01);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
//! let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
//!
//! let (cal, _examples) = calibrate(&split.train, &small, &big);
//! let disc = DifficultCaseDiscriminator::new(cal.thresholds);
//! let outcome = evaluate(&split.test, &small, &big,
//!                        &Policy::DifficultCase(disc), &EvalConfig::default());
//! println!("end-to-end mAP {:.2}% at {:.0}% upload",
//!          outcome.e2e_map_pct, outcome.upload_ratio * 100.0);
//! ```
//!
//! # Streaming example (many edges, one cloud)
//!
//! ```
//! use std::sync::Arc;
//! use datagen::{Dataset, DatasetProfile, SplitId};
//! use modelzoo::{Detector, ModelKind, SimDetector};
//! use simnet::LinkModel;
//! use smallbig_core::{CloudConfig, CloudServer, DifficultCaseDiscriminator,
//!                     Policy, SessionConfig};
//!
//! let data = Dataset::generate("stream", &DatasetProfile::helmet(), 10, 3);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
//! let big: Arc<dyn Detector + Send + Sync> =
//!     Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
//!
//! let mut cloud = CloudServer::spawn(
//!     CloudConfig { max_batch: 2, ..CloudConfig::default() }, big);
//! let cfg = SessionConfig { frame_size: (96, 96), ..SessionConfig::new(2) };
//! let mut cautious = cloud.connect(
//!     cfg.clone(), &small, Box::new(DifficultCaseDiscriminator::default()));
//! let mut thorough = cloud.connect(
//!     SessionConfig { link: LinkModel::fast_wifi(), ..cfg },
//!     &small, Box::new(Policy::CloudOnly));
//!
//! for scene in data.iter() {
//!     cautious.submit(scene);
//!     thorough.submit(scene);
//! }
//! let (a, b) = (cautious.drain(), thorough.drain());
//! assert_eq!(b.uploads, 10);
//! drop((cautious, thorough));
//! let stats = cloud.shutdown();
//! assert_eq!(stats.served, a.uploads + b.uploads);
//! ```
//!
//! # Migrating from the pre-session API
//!
//! The closed `Policy`-enum-only world became trait-based, and the
//! dataset-at-a-time entry points became streaming:
//!
//! | before | after |
//! |---|---|
//! | match on `Policy` variants | implement [`OffloadPolicy`] |
//! | `run_system(&dataset, …)` | [`CloudServer::spawn`] + [`EdgeSession::submit`]/[`poll`](EdgeSession::poll)/[`drain`](EdgeSession::drain) |
//! | one edge, one link | N sessions, each with its own [`SessionConfig`] |
//!
//! `run_system`, `SmallBigSystem::run` and every report type are unchanged
//! and produce bit-identical results (guarded by `tests/api_equivalence.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod discriminator;
mod features;
pub mod fleet;
mod labeling;
pub mod par;
mod persist;
mod pipeline;
mod runtime;
mod scheduler;
mod server;
mod strategies;
mod system;
pub mod transport;
mod update;
pub mod wire;

pub use persist::PersistError;

pub use calibrate::{
    calibrate, calibrate_conf_threshold, calibrate_count_area, BinaryStats, Calibration,
};
pub use discriminator::{CaseKind, DifficultCaseDiscriminator, DiscriminatorConfig, Thresholds};
pub use features::{SemanticFeatures, PREDICTION_THRESHOLD};
pub use labeling::{
    difficult_fraction, label_dataset, label_dataset_with, label_scene, label_scene_with,
    LabeledExample,
};
pub use pipeline::{
    detect_all, discriminator_stats_on, discriminator_test_stats, evaluate, evaluate_detections,
    evaluate_streaming, EvalConfig, EvalOutcome,
};
pub use runtime::{run_system, RuntimeConfig, RuntimeMode, RuntimeReport};
pub use scheduler::{
    AutoscaleConfig, DeadlineAware, DifficultyPriority, FifoBatcher, QueuedFrame, Scheduler,
    SchedulerConfig,
};
pub use server::{
    CloudConfig, CloudServer, CloudStats, EdgePipeline, EdgeSession, FrameResult, FrameTicket,
    SessionConfig, SessionReport,
};
pub use strategies::{Decision, OffloadPolicy, Policy, PolicyInput, QuantileStream, ScoreKind};
pub use system::{SmallBigSystem, SmallBigSystemBuilder};
pub use update::{
    CalibrationSnapshot, CalibrationUpdate, UpdateConfig, UPDATE_FORMAT, UPDATE_TICKET,
};
