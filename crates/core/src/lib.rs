//! # smallbig-core — the small-big model framework
//!
//! The paper's contribution (*Edge-Cloud Collaborated Object Detection via
//! Difficult-Case Discriminator*, ICDCS 2023), implemented end to end:
//!
//! * [`SemanticFeatures`] — the two semantic features read off the small
//!   model's raw output,
//! * [`DifficultCaseDiscriminator`] — the three-threshold decision model,
//! * [`label_scene`] / [`label_dataset`] — ground-truth difficulty labels,
//! * [`calibrate`] — the paper's threshold-training procedure (Eq. 1
//!   regression + grid search),
//! * [`Policy`] — our strategy and every baseline (random / blurred / top-1
//!   confidence / cloud-only / edge-only / oracle),
//! * [`evaluate`] — batch evaluation producing the paper's table metrics,
//! * [`run_system`] — a live edge-cloud runtime with real threads, real
//!   serialized frames and simulated clocks (Table XI).
//!
//! # Example
//!
//! ```
//! use datagen::{Split, SplitId};
//! use modelzoo::{ModelKind, SimDetector};
//! use smallbig_core::{calibrate, evaluate, EvalConfig, Policy,
//!                     DifficultCaseDiscriminator};
//!
//! let split = Split::load_scaled(SplitId::Voc07, 0.01);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
//! let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
//!
//! let (cal, _examples) = calibrate(&split.train, &small, &big);
//! let disc = DifficultCaseDiscriminator::new(cal.thresholds);
//! let outcome = evaluate(&split.test, &small, &big,
//!                        &Policy::DifficultCase(disc), &EvalConfig::default());
//! println!("end-to-end mAP {:.2}% at {:.0}% upload",
//!          outcome.e2e_map_pct, outcome.upload_ratio * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod discriminator;
mod features;
mod labeling;
mod persist;
mod pipeline;
mod runtime;
mod strategies;
mod system;
pub mod wire;

pub use persist::PersistError;

pub use calibrate::{
    calibrate, calibrate_conf_threshold, calibrate_count_area, BinaryStats, Calibration,
};
pub use discriminator::{
    CaseKind, DifficultCaseDiscriminator, DiscriminatorConfig, Thresholds,
};
pub use features::{SemanticFeatures, PREDICTION_THRESHOLD};
pub use labeling::{difficult_fraction, label_dataset, label_scene, LabeledExample};
pub use pipeline::{discriminator_test_stats, evaluate, EvalConfig, EvalOutcome};
pub use runtime::{run_system, RuntimeConfig, RuntimeMode, RuntimeReport};
pub use strategies::{Decision, Policy, PolicyInput};
pub use system::{SmallBigSystem, SmallBigSystemBuilder};
