//! The difficult-case discriminator — the paper's core contribution (Sec. V).
//!
//! A three-threshold model over the small model's preliminary result:
//!
//! 1. **All detected?** If the predicted count equals the noise-filtered
//!    estimate, the image is an easy case (no uncertain objects).
//! 2. **Too many objects?** If the estimated count exceeds `t_count`
//!    (paper optimum: 2), the image is a difficult case.
//! 3. **Too small an object?** If the estimated minimum object area ratio is
//!    below `t_area` (paper optimum: 0.31), the image is a difficult case.
//!    Otherwise it is easy.

use crate::{SemanticFeatures, PREDICTION_THRESHOLD};
use detcore::ImageDetections;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The discriminator's verdict on one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseKind {
    /// The small model's result is trusted; processed locally at the edge.
    Easy,
    /// The image is uploaded to the cloud for the big model.
    Difficult,
}

impl CaseKind {
    /// `true` for difficult cases.
    pub fn is_difficult(&self) -> bool {
        matches!(self, CaseKind::Difficult)
    }
}

impl fmt::Display for CaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseKind::Easy => f.write_str("easy"),
            CaseKind::Difficult => f.write_str("difficult"),
        }
    }
}

/// The discriminator's calibrated thresholds (Sec. V-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Noise-filter confidence threshold (`t_conf`, regressed; 0.15–0.35).
    pub conf: f64,
    /// Object-count threshold (`t_count`; paper optimum 2).
    pub count: usize,
    /// Minimum-area-ratio threshold (`t_area`; paper optimum 0.31).
    pub area: f64,
}

impl Thresholds {
    /// The paper's published optimal thresholds (conf regressed to ≈ 0.2).
    pub fn paper() -> Self {
        Thresholds {
            conf: 0.20,
            count: 2,
            area: 0.31,
        }
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::paper()
    }
}

/// Which parts of the decision procedure are active (for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscriminatorConfig {
    /// Step 1: the all-detected shortcut.
    pub use_all_detected_shortcut: bool,
    /// Step 2: the object-count test.
    pub use_count: bool,
    /// Step 3: the minimum-area test.
    pub use_area: bool,
}

impl Default for DiscriminatorConfig {
    fn default() -> Self {
        DiscriminatorConfig {
            use_all_detected_shortcut: true,
            use_count: true,
            use_area: true,
        }
    }
}

/// The difficult-case discriminator.
///
/// # Examples
///
/// ```
/// use detcore::{BBox, ClassId, Detection, ImageDetections};
/// use smallbig_core::{CaseKind, DifficultCaseDiscriminator, Thresholds};
///
/// let disc = DifficultCaseDiscriminator::new(Thresholds::paper());
///
/// // One confidently-detected large object: easy case, stays at the edge.
/// let easy = ImageDetections::from_vec(vec![Detection::new(
///     ClassId(0), 0.95, BBox::new(0.1, 0.1, 0.8, 0.9).unwrap(),
/// )]);
/// assert_eq!(disc.classify(&easy), CaseKind::Easy);
///
/// // A sub-threshold box betrays a possibly-missed small object: difficult.
/// let hard = ImageDetections::from_vec(vec![
///     Detection::new(ClassId(0), 0.95, BBox::new(0.1, 0.1, 0.8, 0.9).unwrap()),
///     Detection::new(ClassId(3), 0.28, BBox::new(0.0, 0.0, 0.08, 0.09).unwrap()),
/// ]);
/// assert_eq!(disc.classify(&hard), CaseKind::Difficult);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DifficultCaseDiscriminator {
    thresholds: Thresholds,
    config: DiscriminatorConfig,
}

impl DifficultCaseDiscriminator {
    /// Creates a discriminator with the full three-step procedure.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are out of range (`conf ∉ (0, 0.5]`,
    /// `area ∉ [0, 1]`).
    pub fn new(thresholds: Thresholds) -> Self {
        Self::with_config(thresholds, DiscriminatorConfig::default())
    }

    /// Creates a discriminator with selected steps disabled (ablations).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`DifficultCaseDiscriminator::new`].
    pub fn with_config(thresholds: Thresholds, config: DiscriminatorConfig) -> Self {
        assert!(
            thresholds.conf > 0.0 && thresholds.conf <= PREDICTION_THRESHOLD,
            "confidence threshold must be in (0, 0.5]"
        );
        assert!(
            (0.0..=1.0).contains(&thresholds.area),
            "area threshold must be in [0, 1]"
        );
        DifficultCaseDiscriminator { thresholds, config }
    }

    /// The calibrated thresholds in use.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The active configuration.
    pub fn config(&self) -> DiscriminatorConfig {
        self.config
    }

    /// Classifies an image from the small model's raw detections
    /// (the full workflow of Fig. 5).
    pub fn classify(&self, small_dets: &ImageDetections) -> CaseKind {
        let features = SemanticFeatures::extract(small_dets, self.thresholds.conf);
        self.classify_features(&features)
    }

    /// Classifies from pre-extracted semantic features.
    pub fn classify_features(&self, features: &SemanticFeatures) -> CaseKind {
        // Step 1: all objects confidently detected -> easy.
        if self.config.use_all_detected_shortcut && features.all_detected() {
            return CaseKind::Easy;
        }
        // Step 2: too many objects -> difficult.
        if self.config.use_count && features.estimated_count > self.thresholds.count {
            return CaseKind::Difficult;
        }
        // Step 3: too small a minimum object -> difficult.
        if self.config.use_area {
            if let Some(min_area) = features.estimated_min_area {
                if min_area < self.thresholds.area {
                    return CaseKind::Difficult;
                }
            }
        }
        CaseKind::Easy
    }

    /// Classifies from *ground-truth* semantic features (the paper's Table I
    /// "Ground Truth" row, used during threshold calibration): difficult iff
    /// the count exceeds `t_count` **or** the minimum area is below `t_area`.
    pub fn classify_true_features(&self, num_objects: usize, min_area: Option<f64>) -> CaseKind {
        if self.config.use_count && num_objects > self.thresholds.count {
            return CaseKind::Difficult;
        }
        if self.config.use_area {
            if let Some(a) = min_area {
                if a < self.thresholds.area {
                    return CaseKind::Difficult;
                }
            }
        }
        CaseKind::Easy
    }
}

impl Default for DifficultCaseDiscriminator {
    fn default() -> Self {
        DifficultCaseDiscriminator::new(Thresholds::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detcore::{BBox, ClassId, Detection};

    fn dets(specs: &[(f64, f64)]) -> ImageDetections {
        // (score, box side)
        specs
            .iter()
            .enumerate()
            .map(|(i, &(score, side))| {
                let x0 = (i as f64 * 0.02).min(0.3);
                Detection::new(
                    ClassId(0),
                    score,
                    BBox::new(x0, 0.1, (x0 + side).min(1.0), (0.1 + side).min(1.0)).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn step1_all_detected_is_easy_even_if_small() {
        let disc = DifficultCaseDiscriminator::default();
        // tiny object but confidently detected and no uncertain boxes
        let d = dets(&[(0.9, 0.05)]);
        assert_eq!(disc.classify(&d), CaseKind::Easy);
    }

    #[test]
    fn step2_many_objects_is_difficult() {
        let disc = DifficultCaseDiscriminator::default();
        // 3 predicted + 1 uncertain box -> estimated 4 > 2
        let d = dets(&[(0.9, 0.6), (0.8, 0.6), (0.7, 0.6), (0.3, 0.6)]);
        assert_eq!(disc.classify(&d), CaseKind::Difficult);
    }

    #[test]
    fn step3_small_min_area_is_difficult() {
        let disc = DifficultCaseDiscriminator::default();
        // 1 predicted + 1 uncertain small box -> estimated 2, min area tiny
        let d = dets(&[(0.9, 0.7), (0.3, 0.1)]);
        assert_eq!(disc.classify(&d), CaseKind::Difficult);
    }

    #[test]
    fn step3_large_min_area_is_easy() {
        let disc = DifficultCaseDiscriminator::default();
        // 1 predicted + 1 uncertain LARGE box -> estimated 2 <= 2, min area 0.36
        let d = dets(&[(0.9, 0.7), (0.3, 0.6)]);
        assert_eq!(disc.classify(&d), CaseKind::Easy);
    }

    #[test]
    fn noise_below_tconf_is_ignored() {
        let disc = DifficultCaseDiscriminator::default();
        let d = dets(&[(0.9, 0.7), (0.1, 0.05)]); // noise box below 0.2
        assert_eq!(disc.classify(&d), CaseKind::Easy);
    }

    #[test]
    fn empty_image_is_easy() {
        let disc = DifficultCaseDiscriminator::default();
        assert_eq!(disc.classify(&ImageDetections::new()), CaseKind::Easy);
    }

    #[test]
    fn true_feature_mode_uses_or_rule() {
        let disc = DifficultCaseDiscriminator::default();
        assert_eq!(
            disc.classify_true_features(3, Some(0.5)),
            CaseKind::Difficult
        );
        assert_eq!(
            disc.classify_true_features(1, Some(0.1)),
            CaseKind::Difficult
        );
        assert_eq!(disc.classify_true_features(2, Some(0.4)), CaseKind::Easy);
        assert_eq!(disc.classify_true_features(0, None), CaseKind::Easy);
    }

    #[test]
    fn ablation_disable_count() {
        let cfg = DiscriminatorConfig {
            use_count: false,
            ..Default::default()
        };
        let disc = DifficultCaseDiscriminator::with_config(Thresholds::paper(), cfg);
        // many LARGE objects: count test off, min area large -> easy
        let d = dets(&[(0.9, 0.6), (0.8, 0.6), (0.7, 0.6), (0.3, 0.6)]);
        assert_eq!(disc.classify(&d), CaseKind::Easy);
    }

    #[test]
    fn ablation_disable_shortcut() {
        let cfg = DiscriminatorConfig {
            use_all_detected_shortcut: false,
            ..Default::default()
        };
        let disc = DifficultCaseDiscriminator::with_config(Thresholds::paper(), cfg);
        // all detected, but small object -> without the shortcut it's difficult
        let d = dets(&[(0.9, 0.05)]);
        assert_eq!(disc.classify(&d), CaseKind::Difficult);
    }

    #[test]
    #[should_panic(expected = "confidence threshold")]
    fn rejects_bad_conf() {
        let _ = DifficultCaseDiscriminator::new(Thresholds {
            conf: 0.7,
            count: 2,
            area: 0.31,
        });
    }

    #[test]
    fn display_and_flags() {
        assert_eq!(format!("{}", CaseKind::Easy), "easy");
        assert!(CaseKind::Difficult.is_difficult());
        assert!(!CaseKind::Easy.is_difficult());
    }
}
