//! The live edge-cloud runtime: real threads, real serialized messages,
//! simulated clocks.
//!
//! [`run_system`] spawns a **cloud server thread** and drives the edge device
//! on the calling thread, exactly mirroring the paper's Jetson-Nano-plus-
//! server deployment (Sec. VI-D). Images flow through the small model and the
//! discriminator; difficult cases are serialized (length-prefixed frames),
//! "uploaded" over a [`LinkModel`]-governed channel, processed by the big
//! model under the server's [`DeviceModel`], and the results return to the
//! edge. All latencies are *virtual time* computed from the device/link
//! models — runs are deterministic and fast regardless of wall-clock.

use crate::wire::{decode_frame, encode_frame};
use crate::{CaseKind, DifficultCaseDiscriminator};
use crossbeam::channel;
use datagen::{Dataset, Scene};
use detcore::{count_detected, ApProtocol, CountingConfig, DatasetCounter, MapEvaluator};
use imaging::{encoded_size_bytes, render};
use modelzoo::Detector;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use simnet::{DeviceModel, LatencyBreakdown, LatencyStats, LinkModel};
use std::sync::Arc;
use std::thread;

/// Routing mode for the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeMode {
    /// Small model + discriminator; difficult cases go to the cloud.
    SmallBig,
    /// Every image goes to the cloud (no edge inference).
    CloudOnly,
    /// Every image is handled by the edge model only.
    EdgeOnly,
}

/// Configuration of a runtime session.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Edge device model (default: Jetson Nano).
    pub edge: DeviceModel,
    /// Cloud device model (default: RTX3060 server).
    pub cloud: DeviceModel,
    /// The edge↔cloud link (default: the paper's WLAN).
    pub link: LinkModel,
    /// Resolution at which frames are rendered/encoded for upload sizing.
    pub frame_size: (usize, usize),
    /// Fixed discriminator execution time (threshold checks are trivial).
    pub discriminator_s: f64,
    /// Seed for link jitter draws.
    pub seed: u64,
    /// AP protocol for the final report.
    pub ap_protocol: ApProtocol,
    /// Counting thresholds for the detected-objects metric.
    pub counting: CountingConfig,
    /// Optional per-image latency deadline. When the cloud's answer would
    /// arrive later than `deadline_s` after the image entered the system,
    /// the edge falls back to the small model's local result (the upload
    /// bandwidth is still spent). `None` = wait indefinitely.
    pub deadline_s: Option<f64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            edge: DeviceModel::jetson_nano(),
            cloud: DeviceModel::gpu_server(),
            link: LinkModel::wlan(),
            frame_size: (300, 300),
            discriminator_s: 0.0004,
            seed: 0x5417,
            ap_protocol: ApProtocol::Voc07ElevenPoint,
            counting: CountingConfig::default(),
            deadline_s: None,
        }
    }
}

/// What a runtime session reports (the paper's Table XI columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RuntimeReport {
    /// End-to-end mAP (%) of the results the edge device returned.
    pub map_pct: f64,
    /// Objects detected across the run.
    pub detected: usize,
    /// Ground-truth objects.
    pub total_gt: usize,
    /// Total (virtual) inference time for the whole run, seconds.
    pub total_time_s: f64,
    /// Fraction of images uploaded.
    pub upload_ratio: f64,
    /// Per-component latency totals.
    pub latency: LatencyStats,
    /// Total bytes shipped edge→cloud.
    pub uplink_bytes: u64,
    /// Uploads whose cloud answer missed the deadline (local fallback used).
    pub deadline_misses: usize,
}

/// The message the edge sends for a difficult case.
#[derive(Debug, Serialize, Deserialize)]
struct UploadRequest {
    scene: Scene,
    /// Size of the encoded camera frame being uploaded (drives the link).
    frame_bytes: usize,
    /// Virtual send timestamp at the edge.
    sent_at: f64,
}

/// The cloud's reply.
#[derive(Debug, Serialize, Deserialize)]
struct UploadResponse {
    dets: detcore::ImageDetections,
    /// Virtual timestamp at which the reply left the server.
    sent_at: f64,
    /// Server-side inference time (for the latency breakdown).
    infer_s: f64,
    /// Uplink transfer time the request experienced.
    uplink_s: f64,
}

/// Runs the live system over a dataset and reports Table XI-style metrics.
///
/// The cloud runs on its own thread with its own virtual busy-clock; requests
/// queue if they arrive while the server is busy. The edge processes frames
/// sequentially, as the paper's measurement does.
///
/// # Examples
///
/// ```
/// use datagen::{Dataset, DatasetProfile, SplitId};
/// use modelzoo::{ModelKind, SimDetector};
/// use smallbig_core::{run_system, DifficultCaseDiscriminator, RuntimeConfig, RuntimeMode};
///
/// let test = Dataset::generate("demo", &DatasetProfile::helmet(), 20, 3);
/// let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
/// let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
/// let report = run_system(
///     &test, &small, &big,
///     &DifficultCaseDiscriminator::default(),
///     RuntimeMode::SmallBig,
///     &RuntimeConfig { frame_size: (96, 96), ..Default::default() },
/// );
/// assert!(report.total_time_s > 0.0);
/// ```
pub fn run_system(
    test: &Dataset,
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
    discriminator: &DifficultCaseDiscriminator,
    mode: RuntimeMode,
    config: &RuntimeConfig,
) -> RuntimeReport {
    assert!(!test.is_empty(), "cannot run over an empty dataset");
    let num_classes = test.taxonomy().len();

    let (req_tx, req_rx) = channel::unbounded::<bytes::Bytes>();
    let (resp_tx, resp_rx) = channel::unbounded::<bytes::Bytes>();

    // Shared so the test below can assert the server actually saw traffic.
    let served = Arc::new(Mutex::new(0usize));
    let served_cloud = Arc::clone(&served);

    let cloud_cfg = (config.cloud.clone(), config.link.clone(), config.seed);
    let report = thread::scope(|scope| {
        // ---- Cloud server thread ----
        scope.spawn(move || {
            let (device, link, seed) = cloud_cfg;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc10d);
            let mut server_free_at = 0.0f64;
            while let Ok(frame) = req_rx.recv() {
                let req: UploadRequest =
                    decode_frame(&frame).expect("edge sends well-formed frames");
                let uplink_s = link.transfer_time(req.frame_bytes, &mut rng);
                let arrival = req.sent_at + uplink_s;
                let start = server_free_at.max(arrival);
                let infer_s = device.inference_time(big.flops());
                server_free_at = start + infer_s;
                let dets = big.detect(&req.scene);
                *served_cloud.lock() += 1;
                let resp = UploadResponse {
                    dets,
                    sent_at: server_free_at,
                    infer_s,
                    uplink_s,
                };
                if resp_tx.send(encode_frame(&resp)).is_err() {
                    break; // edge hung up
                }
            }
        });

        // ---- Edge device (this thread) ----
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xed6e);
        let mut now = 0.0f64;
        let mut map = MapEvaluator::new(num_classes, config.ap_protocol);
        let mut counter = DatasetCounter::new();
        let mut latency = LatencyStats::new();
        let mut uplink_bytes = 0u64;
        let mut deadline_misses = 0usize;
        let mut uploads = 0usize;

        for scene in test.iter() {
            let gts = scene.ground_truths();
            let mut breakdown = LatencyBreakdown::default();

            let (final_dets, decision) = match mode {
                RuntimeMode::EdgeOnly => {
                    breakdown.edge_infer_s = config.edge.inference_time(small.flops());
                    (small.detect(scene), CaseKind::Easy)
                }
                RuntimeMode::CloudOnly => (small.detect(scene), CaseKind::Difficult),
                RuntimeMode::SmallBig => {
                    breakdown.edge_infer_s = config.edge.inference_time(small.flops());
                    breakdown.discriminator_s = config.discriminator_s;
                    let dets = small.detect(scene);
                    let kind = discriminator.classify(&dets);
                    (dets, kind)
                }
            };

            now += breakdown.edge_infer_s + breakdown.discriminator_s;

            let final_dets = if decision.is_difficult() {
                // Upload the encoded frame.
                let image_entered_at = now - breakdown.edge_infer_s - breakdown.discriminator_s;
                let frame = render(&scene.render_spec(config.frame_size.0, config.frame_size.1));
                let frame_bytes = encoded_size_bytes(&frame);
                uplink_bytes += frame_bytes as u64;
                uploads += 1;
                let req = UploadRequest {
                    scene: scene.clone(),
                    frame_bytes,
                    sent_at: now,
                };
                req_tx.send(encode_frame(&req)).expect("cloud thread alive");
                let resp: UploadResponse = decode_frame(
                    &resp_rx.recv().expect("cloud thread replies"),
                )
                .expect("cloud sends well-formed frames");
                let downlink_s = config
                    .link
                    .transfer_time(imaging::result_size_bytes(resp.dets.len()), &mut rng);
                let answer_at = resp.sent_at + downlink_s;
                let missed_deadline = config
                    .deadline_s
                    .map(|d| answer_at - image_entered_at > d)
                    .unwrap_or(false);
                if missed_deadline {
                    // The edge gives up waiting and serves the local result;
                    // the upload bandwidth is already spent.
                    deadline_misses += 1;
                    let deadline = config.deadline_s.expect("checked above");
                    let waited = (image_entered_at + deadline - now).max(0.0);
                    breakdown.uplink_s = waited;
                    now += waited;
                    final_dets
                } else {
                    breakdown.uplink_s = resp.uplink_s;
                    breakdown.cloud_infer_s =
                        resp.infer_s + (resp.sent_at - now - resp.uplink_s - resp.infer_s).max(0.0);
                    breakdown.downlink_s = downlink_s;
                    now = answer_at;
                    resp.dets
                }
            } else {
                final_dets
            };

            latency.add(breakdown);
            map.add_image(&final_dets, &gts);
            counter.add(count_detected(&final_dets, &gts, &config.counting));
        }
        drop(req_tx); // shut the cloud thread down

        RuntimeReport {
            map_pct: map.evaluate().map_percent(),
            detected: counter.total_detected(),
            total_gt: counter.total_gt(),
            total_time_s: now,
            upload_ratio: uploads as f64 / test.len() as f64,
            latency,
            uplink_bytes,
            deadline_misses,
        }
    });

    assert!(
        *served.lock() == (report.upload_ratio * test.len() as f64).round() as usize,
        "server must have processed every uploaded image"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{DatasetProfile, SplitId};
    use modelzoo::{ModelKind, SimDetector};

    fn fixture() -> (Dataset, SimDetector, SimDetector) {
        let test = Dataset::generate("t", &DatasetProfile::helmet(), 40, 9);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
        (test, small, big)
    }

    /// Thresholds calibrated on a HELMET-like training set (computed once via
    /// `calibrate`; pinned here to keep the tests fast).
    fn helmet_disc() -> DifficultCaseDiscriminator {
        DifficultCaseDiscriminator::new(crate::Thresholds { conf: 0.21, count: 4, area: 0.03 })
    }

    fn small_cfg() -> RuntimeConfig {
        RuntimeConfig { frame_size: (96, 96), ..Default::default() }
    }

    #[test]
    fn edge_only_never_uploads() {
        let (test, small, big) = fixture();
        let r = run_system(
            &test,
            &small,
            &big,
            &helmet_disc(),
            RuntimeMode::EdgeOnly,
            &small_cfg(),
        );
        assert_eq!(r.upload_ratio, 0.0);
        assert_eq!(r.uplink_bytes, 0);
        assert!(r.total_time_s > 0.0);
    }

    #[test]
    fn cloud_only_uploads_everything_and_is_slowest() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        // Paper-realistic frame size: WLAN transfer dominates, so offloading
        // everything is slower than hybrid routing (Table XI's regime).
        let cfg = RuntimeConfig::default();
        let cloud = run_system(&test, &small, &big, &disc, RuntimeMode::CloudOnly, &cfg);
        let edge = run_system(&test, &small, &big, &disc, RuntimeMode::EdgeOnly, &cfg);
        let ours = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &cfg);
        assert_eq!(cloud.upload_ratio, 1.0);
        // The paper's Table XI ordering: edge < ours < cloud in time,
        // edge < ours <= cloud in accuracy.
        assert!(edge.total_time_s < ours.total_time_s);
        assert!(ours.total_time_s < cloud.total_time_s);
        assert!(edge.map_pct <= ours.map_pct + 1e-9);
        assert!(ours.map_pct <= cloud.map_pct + 1e-9);
        assert!(edge.detected <= ours.detected);
    }

    #[test]
    fn runtime_is_deterministic() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        let cfg = small_cfg();
        let a = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &cfg);
        let b = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn smallbig_matches_batch_upload_ratio() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        let r = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &small_cfg());
        let batch = crate::evaluate(
            &test,
            &small,
            &big,
            &crate::Policy::DifficultCase(disc),
            &crate::EvalConfig::default(),
        );
        assert!((r.upload_ratio - batch.upload_ratio).abs() < 1e-9);
        assert!((r.map_pct - batch.e2e_map_pct).abs() < 1e-9);
        assert_eq!(r.detected, batch.e2e_detected);
    }

    #[test]
    fn tight_deadline_forces_local_fallback() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        // 150 ms: enough for edge inference but never for a WLAN round trip.
        let cfg = RuntimeConfig {
            frame_size: (96, 96),
            deadline_s: Some(0.15),
            ..Default::default()
        };
        let strict = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &cfg);
        let relaxed = run_system(
            &test,
            &small,
            &big,
            &disc,
            RuntimeMode::SmallBig,
            &RuntimeConfig { frame_size: (96, 96), ..Default::default() },
        );
        // Same routing decisions => same bandwidth, but misses under strict.
        assert_eq!(strict.upload_ratio, relaxed.upload_ratio);
        assert_eq!(strict.uplink_bytes, relaxed.uplink_bytes);
        if strict.upload_ratio > 0.0 {
            assert!(strict.deadline_misses > 0, "WLAN cannot meet 150 ms");
            // Falling back to local results costs accuracy but bounds time.
            assert!(strict.detected <= relaxed.detected);
            assert!(strict.total_time_s < relaxed.total_time_s);
            // Every image finished within edge time + deadline.
            assert!(strict.latency.max_image_s <= 0.15 + 0.2);
        }
        assert_eq!(relaxed.deadline_misses, 0);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        let base = RuntimeConfig { frame_size: (96, 96), ..Default::default() };
        let with_deadline = RuntimeConfig {
            frame_size: (96, 96),
            deadline_s: Some(60.0),
            ..Default::default()
        };
        let a = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &base);
        let b = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &with_deadline);
        assert_eq!(a.detected, b.detected);
        assert_eq!(b.deadline_misses, 0);
        assert!((a.total_time_s - b.total_time_s).abs() < 1e-9);
    }

    #[test]
    fn uplink_bytes_scale_with_uploads() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        let r = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &small_cfg());
        if r.latency.cloud_images > 0 {
            assert!(r.uplink_bytes > 0);
            let per_image = r.uplink_bytes as f64 / r.latency.cloud_images as f64;
            assert!(per_image > 500.0, "encoded frames are non-trivial: {per_image}");
        }
    }
}
