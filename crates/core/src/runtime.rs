//! The legacy batch runtime, now a thin wrapper over the streaming session
//! layer ([`crate::CloudServer`] / [`crate::EdgeSession`]).
//!
//! [`run_system`] spawns a **cloud worker thread** and drives one edge
//! session frame-by-frame on the calling thread, exactly mirroring the
//! paper's Jetson-Nano-plus-server deployment (Sec. VI-D). Images flow
//! through the small model and the discriminator; difficult cases are
//! serialized (length-prefixed frames), "uploaded" over a
//! [`LinkModel`]-governed channel, processed by the big model under the
//! server's [`DeviceModel`], and the results return to the edge. All
//! latencies are *virtual time* computed from the device/link models — runs
//! are deterministic and fast regardless of wall-clock, and byte-for-byte
//! identical to the pre-session-layer implementation (guarded by
//! `tests/api_equivalence.rs`).

use crate::scheduler::{AutoscaleConfig, SchedulerConfig, SchedulerSlot};
use crate::server::{cloud_loop, CloudConfig, EdgePipeline, SessionConfig};
use crate::strategies::OffloadPolicy;
use crate::{DifficultCaseDiscriminator, Policy};
use crossbeam::channel;
use datagen::Dataset;
use detcore::ApProtocol;
use detcore::CountingConfig;
use modelzoo::Detector;
use serde::{Deserialize, Serialize};
use simnet::{DeviceModel, FaultPlan, LatencyStats, LinkModel, LinkTrace, RetryConfig};
use std::thread;

/// Routing mode for the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeMode {
    /// Small model + discriminator; difficult cases go to the cloud.
    SmallBig,
    /// Every image goes to the cloud (no edge inference).
    CloudOnly,
    /// Every image is handled by the edge model only.
    EdgeOnly,
}

/// Configuration of a runtime session.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Edge device model (default: Jetson Nano).
    pub edge: DeviceModel,
    /// Cloud device model (default: RTX3060 server).
    pub cloud: DeviceModel,
    /// The edge↔cloud link (default: the paper's WLAN).
    pub link: LinkModel,
    /// Resolution at which frames are rendered/encoded for upload sizing.
    pub frame_size: (usize, usize),
    /// Fixed discriminator execution time (threshold checks are trivial).
    pub discriminator_s: f64,
    /// Seed for link jitter draws.
    pub seed: u64,
    /// AP protocol for the final report.
    pub ap_protocol: ApProtocol,
    /// Counting thresholds for the detected-objects metric.
    pub counting: CountingConfig,
    /// Optional per-image latency deadline. When the cloud's answer would
    /// arrive later than `deadline_s` after the image entered the system,
    /// the edge falls back to the small model's local result (the upload
    /// bandwidth is still spent). `None` = wait indefinitely.
    pub deadline_s: Option<f64>,
    /// Dynamic schedule overlaying [`link`](Self::link) (outages, ramps,
    /// bursty loss — see [`simnet::LinkTrace`]). `None` (the default) is the
    /// static fast path, bit-identical to the historical behaviour.
    pub link_trace: Option<LinkTrace>,
    /// Scheduled cloud stalls and session drop windows (the single session
    /// `run_system` drives has id 0). Empty by default.
    pub faults: FaultPlan,
    /// Backoff schedule for traced retransmissions.
    pub retry: RetryConfig,
    /// Cloud-side batch scheduler (see the *Scheduling control plane*
    /// section of [`crate::CloudServer`]'s module docs). The default
    /// ([`SchedulerConfig::Fifo`]) is bit-identical to the historical
    /// behaviour; the blocking one-frame-at-a-time drive of `run_system`
    /// means priority schedulers mostly matter for the streaming API.
    pub scheduler: SchedulerConfig,
    /// Admission control: cloud queue depth (queued frames plus virtual
    /// backlog, see [`crate::CloudConfig::queue_limit`]) beyond which
    /// uploads are refused and served edge-only
    /// ([`RuntimeReport::admission_fallbacks`]). Note that `run_system`
    /// drives its one session strictly poll-per-frame, so the cloud never
    /// falls behind it and only `Some(0)` can bind here; the streaming
    /// API is where admission control earns its keep. `None` (the
    /// default) admits everything and changes nothing.
    pub queue_limit: Option<usize>,
    /// Deterministic autoscaling of the cloud's wall-clock inference pool.
    /// `None` (the default) keeps the fixed pool; reports are
    /// bit-identical either way.
    pub autoscale: Option<AutoscaleConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            edge: DeviceModel::jetson_nano(),
            cloud: DeviceModel::gpu_server(),
            link: LinkModel::wlan(),
            frame_size: (300, 300),
            discriminator_s: 0.0004,
            seed: 0x5417,
            ap_protocol: ApProtocol::Voc07ElevenPoint,
            counting: CountingConfig::default(),
            deadline_s: None,
            link_trace: None,
            faults: FaultPlan::new(),
            retry: RetryConfig::default(),
            scheduler: SchedulerConfig::Fifo,
            queue_limit: None,
            autoscale: None,
        }
    }
}

/// What a runtime session reports (the paper's Table XI columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RuntimeReport {
    /// End-to-end mAP (%) of the results the edge device returned.
    pub map_pct: f64,
    /// Objects detected across the run.
    pub detected: usize,
    /// Ground-truth objects.
    pub total_gt: usize,
    /// Total (virtual) inference time for the whole run, seconds.
    pub total_time_s: f64,
    /// Fraction of images uploaded.
    pub upload_ratio: f64,
    /// Per-component latency totals.
    pub latency: LatencyStats,
    /// Total bytes shipped edge→cloud.
    pub uplink_bytes: u64,
    /// Uploads whose cloud answer missed the deadline (local fallback used).
    pub deadline_misses: usize,
    /// Frames routed to the cloud that the (traced) link could not deliver;
    /// the edge served its local answer. Always zero on a static link.
    pub link_fallbacks: usize,
    /// Frames the cloud refused at admission
    /// ([`RuntimeConfig::queue_limit`]); the edge served its local answer
    /// and spent no uplink. Always zero without a queue limit.
    pub admission_fallbacks: usize,
}

/// Runs the live system over a dataset and reports Table XI-style metrics.
///
/// The cloud runs on its own thread with its own virtual busy-clock; requests
/// queue if they arrive while the server is busy. The edge processes frames
/// sequentially, as the paper's measurement does. Internally this is one
/// [`crate::EdgeSession`] against a single-session [`crate::CloudServer`]
/// worker; use those types directly for incremental submission or multiple
/// concurrent edges.
///
/// # Examples
///
/// ```
/// use datagen::{Dataset, DatasetProfile, SplitId};
/// use modelzoo::{ModelKind, SimDetector};
/// use smallbig_core::{run_system, DifficultCaseDiscriminator, RuntimeConfig, RuntimeMode};
///
/// let test = Dataset::generate("demo", &DatasetProfile::helmet(), 20, 3);
/// let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
/// let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
/// let report = run_system(
///     &test, &small, &big,
///     &DifficultCaseDiscriminator::default(),
///     RuntimeMode::SmallBig,
///     &RuntimeConfig { frame_size: (96, 96), ..Default::default() },
/// );
/// assert!(report.total_time_s > 0.0);
/// ```
pub fn run_system(
    test: &Dataset,
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
    discriminator: &DifficultCaseDiscriminator,
    mode: RuntimeMode,
    config: &RuntimeConfig,
) -> RuntimeReport {
    assert!(!test.is_empty(), "cannot run over an empty dataset");
    if let Some(autoscale) = &config.autoscale {
        // Fail on the caller's thread, as CloudServer::spawn does.
        autoscale.assert_valid();
    }
    let num_classes = test.taxonomy().len();

    let cloud_cfg = CloudConfig {
        device: config.cloud.clone(),
        seed: config.seed,
        max_batch: 1,
        workers: 1,
        faults: config.faults.clone(),
        scheduler: config.scheduler,
        queue_limit: config.queue_limit,
        autoscale: config.autoscale,
        updates: None,
    };
    let session_cfg = SessionConfig {
        edge: config.edge.clone(),
        link: config.link.clone(),
        frame_size: config.frame_size,
        discriminator_s: config.discriminator_s,
        seed: config.seed,
        ap_protocol: config.ap_protocol,
        counting: config.counting,
        deadline_s: config.deadline_s,
        pipeline: match mode {
            RuntimeMode::SmallBig => EdgePipeline::Full,
            RuntimeMode::EdgeOnly => EdgePipeline::ModelOnly,
            RuntimeMode::CloudOnly => EdgePipeline::Bypass,
        },
        num_classes,
        link_trace: config.link_trace.clone(),
        drop_windows: config.faults.drops_for(0),
        retry: config.retry,
    };
    let policy: Box<dyn OffloadPolicy + '_> = match mode {
        RuntimeMode::SmallBig => Box::new(discriminator.clone()),
        RuntimeMode::EdgeOnly => Box::new(Policy::EdgeOnly),
        RuntimeMode::CloudOnly => Box::new(Policy::CloudOnly),
    };

    let (tx, rx) = channel::unbounded();
    let (report, stats) = thread::scope(|scope| {
        // ---- Cloud worker thread (same loop CloudServer::spawn runs) ----
        let cloud = scope.spawn(|| {
            cloud_loop(
                &rx,
                big,
                &cloud_cfg,
                SchedulerSlot::from_config(&cloud_cfg.scheduler),
            )
        });

        // ---- Edge device (this thread): one blocking session ----
        let mut session = crate::EdgeSession::attach(
            0,
            session_cfg,
            small,
            policy,
            tx.clone(),
            cloud_cfg.queue_limit.is_some(),
        );
        drop(tx);
        for scene in test.iter() {
            let ticket = session.submit(scene);
            // Block on each frame: the paper's edge is strictly sequential.
            let _ = session.poll(ticket);
        }
        let report = session.drain();
        drop(session); // deregister; the worker exits once all senders drop
        (report, cloud.join().expect("cloud worker never panics"))
    });

    assert!(
        stats.served == report.uploads,
        "server must have processed every uploaded image"
    );
    RuntimeReport {
        map_pct: report.map_pct,
        detected: report.detected,
        total_gt: report.total_gt,
        total_time_s: report.total_time_s,
        upload_ratio: report.upload_ratio,
        latency: report.latency,
        uplink_bytes: report.uplink_bytes,
        deadline_misses: report.deadline_misses,
        link_fallbacks: report.link_fallbacks,
        admission_fallbacks: report.admission_fallbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{DatasetProfile, SplitId};
    use modelzoo::{ModelKind, SimDetector};

    fn fixture() -> (Dataset, SimDetector, SimDetector) {
        let test = Dataset::generate("t", &DatasetProfile::helmet(), 40, 9);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
        (test, small, big)
    }

    /// Thresholds calibrated on a HELMET-like training set (computed once via
    /// `calibrate`; pinned here to keep the tests fast).
    fn helmet_disc() -> DifficultCaseDiscriminator {
        DifficultCaseDiscriminator::new(crate::Thresholds {
            conf: 0.21,
            count: 4,
            area: 0.03,
        })
    }

    fn small_cfg() -> RuntimeConfig {
        RuntimeConfig {
            frame_size: (96, 96),
            ..Default::default()
        }
    }

    #[test]
    fn edge_only_never_uploads() {
        let (test, small, big) = fixture();
        let r = run_system(
            &test,
            &small,
            &big,
            &helmet_disc(),
            RuntimeMode::EdgeOnly,
            &small_cfg(),
        );
        assert_eq!(r.upload_ratio, 0.0);
        assert_eq!(r.uplink_bytes, 0);
        assert!(r.total_time_s > 0.0);
    }

    #[test]
    fn cloud_only_uploads_everything_and_is_slowest() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        // Paper-realistic frame size: WLAN transfer dominates, so offloading
        // everything is slower than hybrid routing (Table XI's regime).
        let cfg = RuntimeConfig::default();
        let cloud = run_system(&test, &small, &big, &disc, RuntimeMode::CloudOnly, &cfg);
        let edge = run_system(&test, &small, &big, &disc, RuntimeMode::EdgeOnly, &cfg);
        let ours = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &cfg);
        assert_eq!(cloud.upload_ratio, 1.0);
        // The paper's Table XI ordering: edge < ours < cloud in time,
        // edge < ours <= cloud in accuracy.
        assert!(edge.total_time_s < ours.total_time_s);
        assert!(ours.total_time_s < cloud.total_time_s);
        assert!(edge.map_pct <= ours.map_pct + 1e-9);
        assert!(ours.map_pct <= cloud.map_pct + 1e-9);
        assert!(edge.detected <= ours.detected);
    }

    #[test]
    fn runtime_is_deterministic() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        let cfg = small_cfg();
        let a = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &cfg);
        let b = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn smallbig_matches_batch_upload_ratio() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        let r = run_system(
            &test,
            &small,
            &big,
            &disc,
            RuntimeMode::SmallBig,
            &small_cfg(),
        );
        let batch = crate::evaluate(
            &test,
            &small,
            &big,
            &crate::Policy::DifficultCase(disc),
            &crate::EvalConfig::default(),
        );
        assert!((r.upload_ratio - batch.upload_ratio).abs() < 1e-9);
        assert!((r.map_pct - batch.e2e_map_pct).abs() < 1e-9);
        assert_eq!(r.detected, batch.e2e_detected);
    }

    #[test]
    fn tight_deadline_forces_local_fallback() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        // 150 ms: enough for edge inference but never for a WLAN round trip.
        let cfg = RuntimeConfig {
            frame_size: (96, 96),
            deadline_s: Some(0.15),
            ..Default::default()
        };
        let strict = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &cfg);
        let relaxed = run_system(
            &test,
            &small,
            &big,
            &disc,
            RuntimeMode::SmallBig,
            &RuntimeConfig {
                frame_size: (96, 96),
                ..Default::default()
            },
        );
        // Same routing decisions => same bandwidth, but misses under strict.
        assert_eq!(strict.upload_ratio, relaxed.upload_ratio);
        assert_eq!(strict.uplink_bytes, relaxed.uplink_bytes);
        if strict.upload_ratio > 0.0 {
            assert!(strict.deadline_misses > 0, "WLAN cannot meet 150 ms");
            // Falling back to local results costs accuracy but bounds time.
            assert!(strict.detected <= relaxed.detected);
            assert!(strict.total_time_s < relaxed.total_time_s);
            // Every image finished within edge time + deadline.
            assert!(strict.latency.max_image_s <= 0.15 + 0.2);
        }
        assert_eq!(relaxed.deadline_misses, 0);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        let base = RuntimeConfig {
            frame_size: (96, 96),
            ..Default::default()
        };
        let with_deadline = RuntimeConfig {
            frame_size: (96, 96),
            deadline_s: Some(60.0),
            ..Default::default()
        };
        let a = run_system(&test, &small, &big, &disc, RuntimeMode::SmallBig, &base);
        let b = run_system(
            &test,
            &small,
            &big,
            &disc,
            RuntimeMode::SmallBig,
            &with_deadline,
        );
        assert_eq!(a.detected, b.detected);
        assert_eq!(b.deadline_misses, 0);
        assert!((a.total_time_s - b.total_time_s).abs() < 1e-9);
    }

    #[test]
    fn uplink_bytes_scale_with_uploads() {
        let (test, small, big) = fixture();
        let disc = helmet_disc();
        let r = run_system(
            &test,
            &small,
            &big,
            &disc,
            RuntimeMode::SmallBig,
            &small_cfg(),
        );
        if r.latency.cloud_images > 0 {
            assert!(r.uplink_bytes > 0);
            let per_image = r.uplink_bytes as f64 / r.latency.cloud_images as f64;
            assert!(
                per_image > 500.0,
                "encoded frames are non-trivial: {per_image}"
            );
        }
    }
}
