//! Fleet-scale engine: an event-driven virtual-time core that carries
//! 10⁵–10⁶ heterogeneous edge sessions in one process, plus the seeded
//! population layer that generates them.
//!
//! # Why not threads
//!
//! The thread-per-component deployment ([`CloudServer::spawn`] +
//! [`crate::EdgeSession`]) is the right shape for a handful of edges: each
//! session blocks on its own channel, the cloud worker drains one queue,
//! and determinism follows from virtual time. It is structurally wrong at
//! population scale — 10⁵ OS threads and 3×10⁵ channels buy nothing when
//! time is virtual anyway. The fleet engine keeps the exact same state
//! machines ([`EdgeMachine`] per session, [`CloudMachine`] per cloud
//! shard) but drives them **inline** from a central event queue keyed on
//! each session's next frame time. No session threads, no channels: a
//! session is ~1 KB of state in a `Vec`, created at its first frame and
//! dropped after its last.
//!
//! # Determinism and the facade contract
//!
//! Both runtimes execute the *same* per-session code against the same
//! [`CloudPort`] seam, and the event queue replays the exact message
//! order a thread-per-session deployment would produce (each frame is
//! submitted and resolved depth-1, in planned arrival order, ties broken
//! by session id). [`run_fleet_sessions`] (event core) and
//! [`run_fleet_reference`] (real threads + channels over the public API)
//! therefore return **bit-identical** per-session reports and cloud
//! stats — pinned by `tests/fleet.rs` and re-asserted by the bench's
//! `fleet` section before any timing.
//!
//! # Parallel drive: one worker per shard group
//!
//! Shards are independent by construction: session `i` only ever talks to
//! shard `i % shards`, shard RNG streams are disjoint (each shard's
//! [`CloudConfig`] seed is derived from the shard id), and the only state
//! crossing shard groups — the upload-size memo — is a pure-function
//! cache whose fill order cannot change any value. Restricting the global
//! `(time, session)` event order to one shard's sessions therefore yields
//! *exactly* the message sequence that shard observes in a single-threaded
//! drive, so each shard group runs its own virtual-time queue on its own
//! scoped worker ([`FleetSpec::threads`], fanned out over the vendored
//! crossbeam channels like [`crate::par::ordered_map`]) and the per-shard
//! outcomes are merged in shard / session-index order. **[`FleetReport`]
//! is bit-identical for every thread count** — pinned by the
//! threads ∈ {1, 2, 4} sweep in `tests/fleet.rs` against the threaded
//! reference deployment; parallelism changes wall-clock time only. A
//! shard drive that panics (e.g. a poisoned inline mailbox) is caught at
//! the shard boundary and surfaced as a typed [`FleetError`] instead of
//! tearing the process down.
//!
//! # Population layer
//!
//! [`FleetSpec`] describes a population, not individual sessions: weighted
//! device/link/policy/deadline mixes, Zipf-skewed tenant sizes, and an
//! arrival curve ([`ArrivalCurve::Diurnal`] rides
//! [`LinkTrace::diurnal_ramp`]'s capacity shape through its cumulative
//! integral, so arrivals crowd the peaks and thin out mid-trough).
//! [`Population::generate`] expands the spec with a single seeded RNG into
//! compact [`PlannedSession`]s (~32 bytes each — 1 M sessions plan in
//! ~32 MB); everything heavier is materialized lazily at the session's
//! first frame. The same seed always yields the same population, the same
//! schedule, and the same [`FleetReport`], bit for bit.
//!
//! # Memory: compact metrics
//!
//! At 10⁶ live sessions every retained byte is a megabyte. The aggregate
//! path ([`run_fleet`]) drives sessions in compact-metrics mode: the
//! per-session `MapEvaluator` (detection records + match scratch, the
//! dominant per-session cost) is dropped entirely — [`FleetReport`]
//! never reads mAP — and per-frame scratch buffers are shared per shard.
//! Counting metrics stay exact integer sums, so
//! [`run_fleet_with`]`(spec, `[`MetricsMode::Full`]`)` and the compact
//! default produce bit-identical reports (pinned in `tests/fleet.rs`);
//! only [`SessionReport::map_pct`] — which the aggregate path discards —
//! differs. [`run_fleet_sessions`] keeps full metrics, so its per-session
//! reports stay bit-identical to the reference deployment.

use crate::scheduler::SchedulerSlot;
use crate::server::{
    AnswerTx, CloudConfig, CloudMachine, CloudPort, CloudServer, CloudStats, EdgeMachine,
    FrameResult, ProbeReply, ProbeTx, SessionConfig, SessionReport, SharedFrameScratch, ToCloud,
    UploadSizeCache,
};
use crate::strategies::{OffloadPolicy, Policy};
use crate::DifficultCaseDiscriminator;
use bytes::Bytes;
use datagen::{Dataset, DatasetProfile, Scene, SplitId};
use modelzoo::{Detector, ModelKind, SimDetector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simnet::{DeviceModel, LinkModel, LinkTrace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Classes in the fleet's synthetic monitoring workload (HELMET-like:
/// person, helmet).
const NUM_CLASSES: usize = 2;

/// Fixed deadline grid (seconds) the deadline-miss curve is evaluated on.
const MISS_GRID: [f64; 11] = [0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0];

/// When new sessions start over the arrival window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalCurve {
    /// Constant arrival intensity over `[0, horizon_s)`.
    Uniform,
    /// Arrival intensity follows a raised-cosine diurnal capacity curve
    /// ([`LinkTrace::diurnal_ramp`]): dense at period boundaries (peak
    /// hours), sparse mid-period (`floor_scale` of peak intensity).
    Diurnal {
        /// Length of one diurnal period, seconds.
        period_s: f64,
        /// Trough intensity as a fraction of peak, in `(0, 1]`.
        floor_scale: f64,
    },
}

/// Offload policy archetypes a fleet mixes over (instantiated per
/// session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetPolicy {
    /// The paper's difficult-case discriminator (paper thresholds).
    Discriminator,
    /// Upload everything.
    CloudOnly,
    /// Upload nothing.
    EdgeOnly,
}

/// One weighted entry of a fleet's device mix.
#[derive(Debug, Clone)]
pub struct DeviceChoice {
    /// Relative weight (any positive scale).
    pub weight: f64,
    /// The edge device model.
    pub device: DeviceModel,
}

/// One weighted entry of a fleet's link mix.
#[derive(Debug, Clone)]
pub struct LinkChoice {
    /// Relative weight (any positive scale).
    pub weight: f64,
    /// The session's static link model.
    pub link: LinkModel,
    /// Optional dynamic schedule over the link (`None` = static fast
    /// path).
    pub trace: Option<LinkTrace>,
}

/// One weighted entry of a fleet's policy mix.
#[derive(Debug, Clone, Copy)]
pub struct PolicyChoice {
    /// Relative weight (any positive scale).
    pub weight: f64,
    /// The policy archetype.
    pub policy: FleetPolicy,
}

/// One weighted entry of a fleet's deadline mix.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineChoice {
    /// Relative weight (any positive scale).
    pub weight: f64,
    /// Per-frame latency deadline, `None` = best-effort.
    pub deadline_s: Option<f64>,
}

/// A seeded description of a whole fleet: how many sessions, who they
/// are (device/link/policy/deadline mixes), which tenant they belong to
/// (Zipf-skewed), when they arrive, and what cloud they share.
///
/// Construct with [`FleetSpec::new`] and override fields; every run
/// function is a pure function of the spec, so the same spec always
/// reproduces the same [`FleetReport`].
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of sessions in the population.
    pub sessions: usize,
    /// Number of tenants sessions are assigned to (Zipf-skewed sizes).
    pub tenants: usize,
    /// Zipf exponent for tenant sizes (`0` = uniform; larger = more
    /// skew).
    pub zipf_exponent: f64,
    /// Frames every session submits.
    pub frames_per_session: u32,
    /// Virtual seconds between a session's consecutive frames.
    pub frame_interval_s: f64,
    /// Shape of the arrival intensity over the window.
    pub arrival: ArrivalCurve,
    /// Length of the arrival window: every session starts in
    /// `[0, horizon_s)`. Sessions whose frames outlast the window keep
    /// running — overlap is what makes the fleet *concurrent*.
    pub horizon_s: f64,
    /// Weighted edge-device mix.
    pub device_mix: Vec<DeviceChoice>,
    /// Weighted link mix (entries may carry a dynamic trace).
    pub link_mix: Vec<LinkChoice>,
    /// Weighted offload-policy mix.
    pub policy_mix: Vec<PolicyChoice>,
    /// Weighted deadline mix.
    pub deadline_mix: Vec<DeadlineChoice>,
    /// Resolution frames are rendered at for upload sizing.
    pub frame_size: (usize, usize),
    /// Distinct synthetic scenes the fleet cycles through (shared
    /// `Arc<Scene>`s; per-session offset decorrelates neighbours).
    pub scene_pool: usize,
    /// Optional distribution drift: a piecewise-constant schedule of
    /// generative profiles over virtual time. Each phase gets its own
    /// scene pool (of [`FleetSpec::scene_pool`] scenes), and which pool a
    /// frame samples from is a pure function of the frame's virtual
    /// timestamp — so drifting fleets stay bit-reproducible and the
    /// event core and threaded reference agree. `None` keeps today's
    /// single static helmet pool, bit-identical to pre-drift builds.
    pub drift: Option<datagen::DriftSchedule>,
    /// Cloud shards; session `i` is served by shard `i % shards`. Each
    /// shard is an independent [`CloudMachine`] with a derived seed.
    pub shards: usize,
    /// Per-shard cloud configuration (seed is xored with the shard id).
    pub cloud: CloudConfig,
    /// Worker threads for the shard-parallel drive: shard groups fan out
    /// over `min(threads, shards)` scoped workers. `0` picks one per
    /// available core; `1` forces the exact sequential path. The
    /// `SMALLBIG_FLEET_THREADS` environment variable overrides a `0`
    /// here. [`FleetReport`] is bit-identical for every value —
    /// parallelism changes wall-clock time only (see the module docs).
    pub threads: usize,
    /// Master seed: population draws, scene generation, and every
    /// per-session RNG stream derive from it.
    pub seed: u64,
}

impl FleetSpec {
    /// A heterogeneous default fleet of `sessions` sessions: Jetson
    /// edges over a wlan/fast-wifi/cellular link mix (one slice traced
    /// through a diurnal bandwidth ramp), discriminator-heavy policy
    /// mix, half the fleet under a 500 ms deadline, 20 Zipf(1.1)
    /// tenants, and diurnal arrivals over a 60 s window. Frame cadence
    /// (8 frames, 20 s apart) makes session lifetimes span the window,
    /// so the whole population is live concurrently mid-run.
    ///
    /// The cloud is *provisioned to the population*: shards scale as
    /// `sessions / 1024` (clamped to `[4, 64]`) so per-shard offered
    /// load stays near capacity instead of drowning at scale, and
    /// admission control is on (`queue_limit: Some(64)`) so transient
    /// overload sheds to the edge-local answer rather than queueing
    /// unboundedly — deadline-miss curves then measure the control
    /// plane, not an unbounded backlog.
    pub fn new(sessions: usize) -> FleetSpec {
        FleetSpec {
            sessions,
            tenants: 20,
            zipf_exponent: 1.1,
            frames_per_session: 8,
            frame_interval_s: 20.0,
            arrival: ArrivalCurve::Diurnal {
                period_s: 30.0,
                floor_scale: 0.25,
            },
            horizon_s: 60.0,
            device_mix: vec![DeviceChoice {
                weight: 1.0,
                device: DeviceModel::jetson_nano(),
            }],
            link_mix: vec![
                LinkChoice {
                    weight: 0.5,
                    link: LinkModel::wlan(),
                    trace: None,
                },
                LinkChoice {
                    weight: 0.3,
                    link: LinkModel::fast_wifi(),
                    trace: None,
                },
                LinkChoice {
                    weight: 0.2,
                    link: LinkModel::cellular(),
                    trace: Some(LinkTrace::diurnal_ramp(30.0, 0.4, 12, 8)),
                },
            ],
            policy_mix: vec![
                PolicyChoice {
                    weight: 0.7,
                    policy: FleetPolicy::Discriminator,
                },
                PolicyChoice {
                    weight: 0.2,
                    policy: FleetPolicy::CloudOnly,
                },
                PolicyChoice {
                    weight: 0.1,
                    policy: FleetPolicy::EdgeOnly,
                },
            ],
            deadline_mix: vec![
                DeadlineChoice {
                    weight: 0.5,
                    deadline_s: None,
                },
                DeadlineChoice {
                    weight: 0.5,
                    deadline_s: Some(0.5),
                },
            ],
            frame_size: (96, 96),
            scene_pool: 32,
            drift: None,
            shards: (sessions / 1024).clamp(4, 64),
            cloud: CloudConfig {
                queue_limit: Some(64),
                ..CloudConfig::default()
            },
            threads: 0,
            seed: 0xf1ee7,
        }
    }

    fn validate(&self) {
        assert!(self.sessions > 0, "a fleet needs at least one session");
        assert!(
            self.sessions <= u32::MAX as usize,
            "session ids are u32 in the planner"
        );
        assert!(self.tenants > 0, "a fleet needs at least one tenant");
        assert!(self.zipf_exponent >= 0.0, "zipf exponent must be >= 0");
        assert!(self.frames_per_session >= 1, "sessions need >= 1 frame");
        assert!(self.frame_interval_s > 0.0, "frame interval must be > 0");
        assert!(self.horizon_s > 0.0, "arrival window must be > 0");
        assert!(self.scene_pool > 0, "scene pool must be non-empty");
        assert!(self.shards >= 1, "need at least one cloud shard");
        for (name, n) in [
            ("device", self.device_mix.len()),
            ("link", self.link_mix.len()),
            ("policy", self.policy_mix.len()),
            ("deadline", self.deadline_mix.len()),
        ] {
            assert!(n > 0, "{name} mix must be non-empty");
            assert!(n <= 256, "{name} mix indexes as u8 (max 256 entries)");
        }
        if let Some(autoscale) = &self.cloud.autoscale {
            autoscale.assert_valid();
        }
        if let Some(drift) = &self.drift {
            if let Err(e) = drift.validate() {
                panic!("invalid drift schedule: {e}");
            }
        }
    }

    /// The cloud configuration shard `shard` runs with (derived seed).
    fn shard_config(&self, shard: usize) -> CloudConfig {
        let mut cfg = self.cloud.clone();
        cfg.seed ^= (shard as u64) << 32;
        cfg
    }

    /// Materializes the full [`SessionConfig`] for one planned session.
    fn session_config(&self, p: &PlannedSession, index: usize) -> SessionConfig {
        let link = &self.link_mix[p.link as usize];
        let mut cfg = SessionConfig::new(NUM_CLASSES);
        cfg.edge = self.device_mix[p.device as usize].device.clone();
        cfg.link = link.link.clone();
        cfg.link_trace = link.trace.clone();
        cfg.frame_size = self.frame_size;
        cfg.seed = session_seed(self.seed, index);
        cfg.deadline_s = self.deadline_mix[p.deadline as usize].deadline_s;
        cfg
    }

    fn build_policy(&self, p: &PlannedSession) -> Box<dyn OffloadPolicy> {
        match self.policy_mix[p.policy as usize].policy {
            FleetPolicy::Discriminator => {
                Box::new(Policy::DifficultCase(DifficultCaseDiscriminator::default()))
            }
            FleetPolicy::CloudOnly => Box::new(Policy::CloudOnly),
            FleetPolicy::EdgeOnly => Box::new(Policy::EdgeOnly),
        }
    }
}

/// Per-session RNG seed: decorrelates neighbouring sessions while staying
/// a pure function of `(master seed, session index)`.
fn session_seed(master: u64, index: usize) -> u64 {
    master ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The compact plan for one session — everything the engine needs to
/// materialize it at its first frame, as mix indexes (~32 bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedSession {
    /// Virtual time of the session's first frame.
    pub start_s: f64,
    /// Owning tenant.
    pub tenant: u32,
    /// Frames this session submits.
    pub frames: u32,
    /// Index into [`FleetSpec::device_mix`].
    pub device: u8,
    /// Index into [`FleetSpec::link_mix`].
    pub link: u8,
    /// Index into [`FleetSpec::policy_mix`].
    pub policy: u8,
    /// Index into [`FleetSpec::deadline_mix`].
    pub deadline: u8,
}

/// The expanded population: one [`PlannedSession`] per session, in
/// session-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    /// Planned sessions, indexed by session id.
    pub sessions: Vec<PlannedSession>,
}

/// Cumulative weights for a categorical draw by binary search.
fn cumulative(weights: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut acc = 0.0;
    let cum: Vec<f64> = weights
        .map(|w| {
            assert!(w.is_finite() && w > 0.0, "mix weights must be positive");
            acc += w;
            acc
        })
        .collect();
    cum
}

fn draw(cum: &[f64], rng: &mut StdRng) -> usize {
    let total = *cum.last().expect("non-empty mix");
    let r = rng.gen::<f64>() * total;
    cum.partition_point(|&c| c <= r).min(cum.len() - 1)
}

impl Population {
    /// Expands a spec into its planned sessions.
    ///
    /// All draws come from one RNG seeded by `spec.seed`, in a fixed
    /// per-session order (tenant, device, link, policy, deadline,
    /// arrival), so the population is reproducible and two specs
    /// differing only in, say, `shards` plan identical sessions. Start
    /// times are stratified through the arrival curve's inverse
    /// cumulative intensity: session `i` lands in the `i`-th of
    /// `sessions` equal-mass slots (jittered within it), which keeps
    /// arrival order equal to id order and the empirical curve tight to
    /// the spec even for small fleets.
    pub fn generate(spec: &FleetSpec) -> Population {
        spec.validate();
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x907a_7e0f);
        let tenant_cum =
            cumulative((0..spec.tenants).map(|t| ((t + 1) as f64).powf(-spec.zipf_exponent)));
        let device_cum = cumulative(spec.device_mix.iter().map(|c| c.weight));
        let link_cum = cumulative(spec.link_mix.iter().map(|c| c.weight));
        let policy_cum = cumulative(spec.policy_mix.iter().map(|c| c.weight));
        let deadline_cum = cumulative(spec.deadline_mix.iter().map(|c| c.weight));
        let arrival_trace = match spec.arrival {
            ArrivalCurve::Uniform => None,
            ArrivalCurve::Diurnal {
                period_s,
                floor_scale,
            } => {
                let periods = ((spec.horizon_s / period_s).ceil() as usize).max(1);
                Some(LinkTrace::diurnal_ramp(period_s, floor_scale, 48, periods))
            }
        };
        let total_mass = match &arrival_trace {
            None => spec.horizon_s,
            Some(trace) => trace.cumulative_scale(spec.horizon_s),
        };
        let n = spec.sessions;
        let sessions = (0..n)
            .map(|i| {
                let tenant = draw(&tenant_cum, &mut rng) as u32;
                let device = draw(&device_cum, &mut rng) as u8;
                let link = draw(&link_cum, &mut rng) as u8;
                let policy = draw(&policy_cum, &mut rng) as u8;
                let deadline = draw(&deadline_cum, &mut rng) as u8;
                let mass = (i as f64 + rng.gen::<f64>()) / n as f64 * total_mass;
                let start_s = match &arrival_trace {
                    None => mass,
                    Some(trace) => trace.time_at_cumulative_scale(mass),
                };
                PlannedSession {
                    start_s,
                    tenant,
                    frames: spec.frames_per_session,
                    device,
                    link,
                    policy,
                    deadline,
                }
            })
            .collect();
        Population { sessions }
    }
}

/// One entry of the central event queue: session `session`'s frame
/// `frame` is due at virtual time `time`. Min-ordered by `(time,
/// session)` — the planned arrival order, independent of how long
/// processing takes, which is what makes the event core's cloud message
/// order equal to the threaded reference's.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Step {
    time: f64,
    session: u32,
    frame: u32,
}

impl Eq for Step {}

impl PartialOrd for Step {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Step {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.session.cmp(&other.session))
    }
}

/// The central event queue: pops steps in `(time, session)` order and
/// automatically schedules each session's next frame. Holds one entry
/// per not-yet-finished session, so even a 1 M-session fleet queues in
/// ~16 MB.
struct Schedule<'p> {
    heap: BinaryHeap<Reverse<Step>>,
    plan: &'p [PlannedSession],
    interval_s: f64,
}

impl<'p> Schedule<'p> {
    fn new(plan: &'p [PlannedSession], interval_s: f64) -> Schedule<'p> {
        Schedule::for_sessions(plan, interval_s, 0..plan.len())
    }

    /// A schedule over a subset of the plan's sessions (by global id).
    /// Pops in the same `(time, session)` order the full schedule would
    /// emit restricted to exactly these sessions — the property the
    /// shard-parallel drive rests on: a shard sees the identical message
    /// sequence whether the whole fleet or only its own group is driven.
    fn for_sessions(
        plan: &'p [PlannedSession],
        interval_s: f64,
        ids: impl Iterator<Item = usize>,
    ) -> Schedule<'p> {
        let heap = ids
            .map(|i| {
                Reverse(Step {
                    time: plan[i].start_s,
                    session: i as u32,
                    frame: 0,
                })
            })
            .collect();
        Schedule {
            heap,
            plan,
            interval_s,
        }
    }

    fn next(&mut self) -> Option<Step> {
        let step = self.heap.pop()?.0;
        let p = &self.plan[step.session as usize];
        if step.frame + 1 < p.frames {
            self.heap.push(Reverse(Step {
                time: p.start_s + (step.frame + 1) as f64 * self.interval_s,
                session: step.session,
                frame: step.frame + 1,
            }));
        }
        Some(step)
    }
}

/// Panic message every inline-mailbox access uses on a poisoned lock: a
/// *previous* frame panicked while the shard held the mailbox. The shard
/// drive's [`shard_guard`] converts this into a typed [`FleetError`], so
/// one poisoned shard fails the run with a diagnostic instead of a bare
/// `PoisonError` unwrap.
const MAILBOX_POISONED: &str =
    "inline mailbox poisoned: an earlier frame panicked mid-reply on this shard";

/// The in-process mailbox one inline session shares with its cloud shard:
/// answers and probe replies land here synchronously (the shard's
/// `AnswerTx`/`ProbeTx` sinks push from inside `CloudMachine::handle`)
/// and the session's port pops them right after. One allocation per
/// session — both reply paths share the `Arc`.
#[derive(Default)]
struct InlineMailbox {
    answers: VecDeque<(u64, Bytes)>,
    probe: Option<ProbeReply>,
}

/// Handle to one session's [`InlineMailbox`]; cloning shares the mailbox
/// (the cloud-side sinks hold clones).
#[derive(Default, Clone)]
struct InlineInfra {
    mailbox: Arc<Mutex<InlineMailbox>>,
}

impl InlineInfra {
    fn pop_answer(&self) -> Option<(u64, Bytes)> {
        self.mailbox
            .lock()
            .expect(MAILBOX_POISONED)
            .answers
            .pop_front()
    }

    fn take_probe(&self) -> Option<ProbeReply> {
        self.mailbox.lock().expect(MAILBOX_POISONED).probe.take()
    }

    fn push_answer(&self, ticket: u64, frame: Bytes) {
        self.mailbox
            .lock()
            .expect(MAILBOX_POISONED)
            .answers
            .push_back((ticket, frame));
    }

    fn put_probe(&self, reply: ProbeReply) {
        self.mailbox.lock().expect(MAILBOX_POISONED).probe = Some(reply);
    }
}

/// The inline [`CloudPort`]: `send` *is* the cloud's message handler, so
/// a "blocking receive" is just popping the mailbox the handler filled on
/// the same call stack. Never actually blocks — depth-1 driving
/// guarantees every recv follows the send that produced its reply.
struct InlinePort<'c, 'a> {
    cloud: &'c mut CloudMachine<'a>,
    infra: &'c InlineInfra,
}

impl CloudPort for InlinePort<'_, '_> {
    fn send(&mut self, msg: ToCloud) -> bool {
        self.cloud.handle(msg)
    }

    fn recv_answer(&mut self) -> Option<(u64, Bytes)> {
        self.infra.pop_answer()
    }

    fn recv_probe(&mut self) -> Option<ProbeReply> {
        self.infra.take_probe()
    }
}

/// One live session in the event core: its state machine plus mailbox.
/// Boxed so the fleet's `Vec<Option<...>>` stays one pointer per planned
/// session regardless of machine size.
struct LiveSession<'a> {
    m: EdgeMachine<'a>,
    infra: InlineInfra,
}

/// Index into the shared scene pool for session `session`'s frame
/// `frame`: each session starts at its own offset (`session % pool`) and
/// cycles the pool from there, decorrelating neighbours while keeping
/// renders memoisable. This is the **only** copy of that arithmetic —
/// the event core and the threaded reference used to each spell it
/// inline (`(scene_off + frame) % pool` vs `(i % pool + frame) % pool`),
/// which agreed only because `scene_off` happened to equal `i % pool`;
/// any future offset change in one runtime would have silently diverged
/// the populations. Both runtimes now call this helper, pinned by a
/// regression test.
fn scene_index(session: usize, frame: u32, pool: usize) -> usize {
    (session % pool + frame as usize) % pool
}

/// Generates the fleet's shared synthetic workload: one pool of scenes
/// per drift phase (a single static pool when [`FleetSpec::drift`] is
/// `None` — generated exactly as pre-drift builds did, so undrifted
/// fleets stay bit-identical), plus the small and big detectors.
fn workload(spec: &FleetSpec) -> (Vec<Vec<Arc<Scene>>>, SimDetector, SimDetector) {
    let arcs =
        |data: &Dataset| -> Vec<Arc<Scene>> { data.iter().map(|s| Arc::new(s.clone())).collect() };
    let pools = match &spec.drift {
        None => vec![arcs(&Dataset::generate(
            "fleet",
            &DatasetProfile::helmet(),
            spec.scene_pool,
            spec.seed ^ 0x5ce9e5,
        ))],
        Some(drift) => drift
            .phases
            .iter()
            .enumerate()
            .map(|(idx, phase)| {
                // Each phase draws from its own derived seed so identical
                // profiles in different phases still yield distinct pools.
                arcs(&Dataset::generate(
                    &format!("fleet-phase{idx}"),
                    &phase.profile,
                    spec.scene_pool,
                    spec.seed ^ 0x5ce9e5 ^ ((idx as u64) << 20),
                ))
            })
            .collect(),
    };
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, NUM_CLASSES);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, NUM_CLASSES);
    (pools, small, big)
}

/// The scene session `session`'s frame `frame` samples at virtual time
/// `t_s`: the drift schedule picks the phase pool (pure function of the
/// timestamp; pool 0 when undrifted) and [`scene_index`] picks within it.
/// Shared by the event core and the threaded reference — the same
/// single-copy rule as [`scene_index`] itself.
fn scene_at<'a>(
    pools: &'a [Vec<Arc<Scene>>],
    drift: Option<&datagen::DriftSchedule>,
    session: usize,
    frame: u32,
    t_s: f64,
) -> &'a Arc<Scene> {
    let pool = &pools[drift.map_or(0, |d| d.phase_index(t_s))];
    &pool[scene_index(session, frame, pool.len())]
}

/// Registers an inline session with its shard, wiring the shard's reply
/// paths straight into the session's mailbox.
fn register_inline(cloud: &mut CloudMachine<'_>, id: u64, link: LinkModel, infra: &InlineInfra) {
    let answers = infra.clone();
    let probes = infra.clone();
    cloud.handle(ToCloud::Register {
        session: id,
        link,
        resp_tx: AnswerTx::Sink(Box::new(move |ticket, frame| {
            answers.push_answer(ticket, frame);
            true
        })),
        probe_tx: ProbeTx::Sink(Box::new(move |reply| {
            probes.put_probe(reply);
            true
        })),
    });
}

/// A fleet run failed: one shard's drive panicked (a poisoned inline
/// mailbox after an earlier mid-frame panic, an unresolved frame, a
/// machine invariant violation). The run surfaces the first failing
/// shard (lowest id) with its panic diagnostic instead of tearing the
/// process down — remaining shards complete normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetError {
    /// The cloud shard whose drive failed.
    pub shard: usize,
    /// The panic diagnostic.
    pub message: String,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet shard {} failed: {}", self.shard, self.message)
    }
}

impl std::error::Error for FleetError {}

/// Runs one shard's drive with a panic boundary: any panic inside —
/// including the descriptive mutex-poison panics of [`InlineInfra`] —
/// becomes a typed [`FleetError`] naming the shard, so callers of the
/// public run functions see `Result`, not an unwinding thread.
fn shard_guard<T>(shard: usize, f: impl FnOnce() -> T) -> Result<T, FleetError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "shard drive panicked with a non-string payload".to_string());
        FleetError { shard, message }
    })
}

/// Resolves [`FleetSpec::threads`] for a run: the `SMALLBIG_FLEET_THREADS`
/// environment variable overrides a spec left at `0` (auto), auto means
/// one worker per available core, and the result is capped by the shard
/// count (a shard group is the unit of parallelism).
fn fleet_threads(spec: &FleetSpec) -> usize {
    fleet_threads_from(
        std::env::var("SMALLBIG_FLEET_THREADS").ok().as_deref(),
        spec,
    )
}

/// [`fleet_threads`] with the environment override supplied by the caller
/// (kept pure so it can be tested without mutating process-global state).
fn fleet_threads_from(env_override: Option<&str>, spec: &FleetSpec) -> usize {
    let configured = match spec.threads {
        0 => env_override
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(0),
        t => t,
    };
    let resolved = if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    };
    resolved.min(spec.shards).max(1)
}

/// How the fleet engine accumulates per-session quality metrics; see the
/// module docs' memory section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsMode {
    /// Historical per-session state: a full `MapEvaluator` plus private
    /// scratch per live session. What [`run_fleet_sessions`] uses, so
    /// [`SessionReport::map_pct`] matches the reference deployment.
    Full,
    /// Fleet-scale mode: no per-session mAP state, per-frame scratch
    /// shared per shard. `SessionReport::map_pct` reads `0`; everything
    /// [`FleetReport`] aggregates is bit-identical to [`MetricsMode::Full`].
    Compact,
}

/// What a shard drive streams as it runs: one callback per resolved frame
/// and one per finished session (with the session's global id, so callers
/// can merge across shards in index order). Implementations are
/// per-shard values, created by a factory and returned to the caller —
/// which is what lets the drives run on independent workers.
trait ShardConsumer: Send {
    fn on_frame(&mut self, tenant: u32, result: &FrameResult);
    fn on_session(&mut self, session: u32, tenant: u32, report: SessionReport);
}

/// Drives one shard group — sessions `i ≡ shard (mod spec.shards)` —
/// through the event core: its own virtual-time queue, its own
/// [`CloudMachine`], its own live-session storage (dense: global id
/// `i` lives at slot `i / shards`). The message sequence this produces
/// is exactly the full fleet schedule restricted to this shard, which is
/// why per-shard drives compose bit-identically (see the module docs).
#[allow(clippy::too_many_arguments)]
fn drive_shard<C: ShardConsumer>(
    spec: &FleetSpec,
    pop: &Population,
    shard: usize,
    mode: MetricsMode,
    pools: &[Vec<Arc<Scene>>],
    small: &(dyn Detector + Sync),
    big: &(dyn Detector + Sync),
    size_cache: &UploadSizeCache,
    consumer: &mut C,
) -> CloudStats {
    let cfg = spec.shard_config(shard);
    let mut cloud = CloudMachine::new(big, &cfg, SchedulerSlot::from_config(&cfg.scheduler), None);
    let admission = spec.cloud.queue_limit.is_some();
    let n = pop.sessions.len();
    let group = n.saturating_sub(shard).div_ceil(spec.shards);
    let mut lives: Vec<Option<Box<LiveSession<'_>>>> = (0..group).map(|_| None).collect();
    // Per-frame scratch shared across the shard's sessions in compact
    // mode (single-threaded per shard, so the lock is uncontended).
    let scratch: SharedFrameScratch = SharedFrameScratch::default();
    let mut schedule = Schedule::for_sessions(
        &pop.sessions,
        spec.frame_interval_s,
        (shard..n).step_by(spec.shards),
    );
    while let Some(step) = schedule.next() {
        let i = step.session as usize;
        let p = &pop.sessions[i];
        let slot = i / spec.shards;
        if step.frame == 0 {
            let cfg = spec.session_config(p, i);
            let infra = InlineInfra::default();
            register_inline(&mut cloud, i as u64, cfg.link.clone(), &infra);
            let mut m = EdgeMachine::new(i as u64, cfg, small, spec.build_policy(p), admission);
            m.set_size_cache(Arc::clone(size_cache));
            if mode == MetricsMode::Compact {
                m.set_compact_metrics(Arc::clone(&scratch));
            }
            lives[slot] = Some(Box::new(LiveSession { m, infra }));
        }
        let live = lives[slot]
            .as_mut()
            .expect("live between first and last frame");
        live.m.advance_to(step.time);
        let scene = scene_at(pools, spec.drift.as_ref(), i, step.frame, step.time);
        let mut port = InlinePort {
            cloud: &mut cloud,
            infra: &live.infra,
        };
        let ticket = live.m.submit_inner(&mut port, scene, Some(scene));
        let result = live
            .m
            .poll(&mut port, ticket)
            .expect("depth-1 driving resolves every frame");
        consumer.on_frame(p.tenant, &result);
        if step.frame + 1 == p.frames {
            let report = live.m.drain(&mut port);
            port.send(ToCloud::Deregister { session: i as u64 });
            consumer.on_session(step.session, p.tenant, report);
            lives[slot] = None;
        }
    }
    cloud.finish()
}

/// Drives the whole fleet, one worker per shard group (see
/// [`fleet_threads`]), and returns every shard's `(consumer, stats)` in
/// shard order. Each shard runs behind [`shard_guard`]; the first
/// failing shard's error is returned after all drives complete.
fn run_event_core<C, F>(
    spec: &FleetSpec,
    pop: &Population,
    mode: MetricsMode,
    make: F,
) -> Result<Vec<(C, CloudStats)>, FleetError>
where
    C: ShardConsumer,
    F: Fn() -> C + Sync,
{
    let (pools, small, big) = workload(spec);
    let small: &(dyn Detector + Sync) = &small;
    let big: &(dyn Detector + Sync) = &big;
    // One upload-size memo for the whole fleet: sessions cycle a shared
    // scene pool, and encoded size is a pure function of (scene,
    // resolution), so after `scene_pool` cold renders every upload's
    // sizing is a hash lookup. The scene pools outlive every session,
    // which is what keeps the address-keyed cache valid — and sharing it
    // across shard workers stays deterministic for the same reason: every
    // fill writes the same value for a key, whoever gets there first.
    let size_cache: UploadSizeCache = Arc::new(Mutex::new(HashMap::new()));
    let threads = fleet_threads(spec);
    crate::par::ordered_map_with(threads, spec.shards, |shard| {
        shard_guard(shard, || {
            let mut consumer = make();
            let stats = drive_shard(
                spec,
                pop,
                shard,
                mode,
                &pools,
                small,
                big,
                &size_cache,
                &mut consumer,
            );
            (consumer, stats)
        })
    })
    .into_iter()
    .collect()
}

/// Collects per-session reports with their global session ids.
#[derive(Default)]
struct CollectSessions {
    reports: Vec<(u32, SessionReport)>,
}

impl ShardConsumer for CollectSessions {
    fn on_frame(&mut self, _tenant: u32, _result: &FrameResult) {}

    fn on_session(&mut self, session: u32, _tenant: u32, report: SessionReport) {
        self.reports.push((session, report));
    }
}

/// Runs the fleet through the event core and returns every per-session
/// report (session-id order) plus per-shard cloud stats — the
/// bit-identity counterpart of [`run_fleet_reference`], for any
/// [`FleetSpec::threads`]. Prefer [`run_fleet`] for large fleets (it
/// aggregates instead of collecting, and drops per-session mAP state).
pub fn run_fleet_sessions(
    spec: &FleetSpec,
) -> Result<(Vec<SessionReport>, Vec<CloudStats>), FleetError> {
    let pop = Population::generate(spec);
    let shards = run_event_core(spec, &pop, MetricsMode::Full, CollectSessions::default)?;
    let mut stats = Vec::with_capacity(spec.shards);
    let mut indexed: Vec<(u32, SessionReport)> = Vec::with_capacity(pop.sessions.len());
    for (c, s) in shards {
        indexed.extend(c.reports);
        stats.push(s);
    }
    // Explicitly index-ordered: the merge must not depend on per-shard
    // completion order (sessions with unequal lifetimes finish out of id
    // order even within a shard).
    indexed.sort_by_key(|&(i, _)| i);
    Ok((indexed.into_iter().map(|(_, r)| r).collect(), stats))
}

/// Runs the *same* fleet through the historical thread-per-session
/// deployment — real [`CloudServer`] threads, real channels, the public
/// [`CloudServer::connect_as`] API — consuming the identical schedule.
/// Per-session reports and cloud stats are bit-identical to
/// [`run_fleet_sessions`]; this is the conformance oracle, not a way to
/// run big fleets (it still materializes sessions lazily, but each shard
/// is an OS thread and every answer crosses a channel).
pub fn run_fleet_reference(spec: &FleetSpec) -> (Vec<SessionReport>, Vec<CloudStats>) {
    let pop = Population::generate(spec);
    let (pools, small, big) = workload(spec);
    let small: &(dyn Detector + Sync) = &small;
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(big);
    let mut servers: Vec<CloudServer> = (0..spec.shards)
        .map(|s| CloudServer::spawn(spec.shard_config(s), Arc::clone(&big)))
        .collect();
    let n = pop.sessions.len();
    let mut lives: Vec<Option<crate::EdgeSession<'_>>> = (0..n).map(|_| None).collect();
    let mut reports: Vec<Option<SessionReport>> = (0..n).map(|_| None).collect();
    let mut schedule = Schedule::new(&pop.sessions, spec.frame_interval_s);
    while let Some(step) = schedule.next() {
        let i = step.session as usize;
        let p = &pop.sessions[i];
        let shard = i % spec.shards;
        if step.frame == 0 {
            let cfg = spec.session_config(p, i);
            lives[i] = Some(servers[shard].connect_as(i as u64, cfg, small, spec.build_policy(p)));
        }
        let live = lives[i]
            .as_mut()
            .expect("live between first and last frame");
        live.advance_to(step.time);
        let scene = scene_at(&pools, spec.drift.as_ref(), i, step.frame, step.time);
        let ticket = live.submit_shared(scene);
        live.poll(ticket)
            .expect("depth-1 driving resolves every frame");
        if step.frame + 1 == p.frames {
            reports[i] = Some(live.drain());
            lives[i] = None; // drop sends the Deregister, as the core does
        }
    }
    let stats = servers.into_iter().map(|s| s.shutdown()).collect();
    (
        reports
            .into_iter()
            .map(|r| r.expect("every session finished"))
            .collect(),
        stats,
    )
}

/// Latency quantiles over a set of frames (nearest-rank on the observed
/// samples), seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyQuantiles {
    /// Mean frame latency.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 90th percentile.
    pub p90_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// 99.9th percentile.
    pub p999_s: f64,
    /// Worst frame.
    pub max_s: f64,
}

/// One point of the deadline-miss curve: the fraction of all frames
/// whose end-to-end latency exceeded `deadline_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissPoint {
    /// Hypothetical deadline, seconds.
    pub deadline_s: f64,
    /// Fraction of frames that would miss it, in `[0, 1]`.
    pub miss_fraction: f64,
}

/// Per-tenant slice of the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant id.
    pub tenant: u32,
    /// Sessions assigned to this tenant.
    pub sessions: usize,
    /// Frames this tenant's sessions submitted.
    pub frames: u64,
    /// Frames uploaded to the cloud.
    pub uploads: u64,
    /// Configured-deadline misses across the tenant's sessions.
    pub deadline_misses: u64,
    /// Objects detected across the tenant's frames (counting metric,
    /// finalized per session as it ends — exact integer sums in both
    /// metrics modes).
    pub detected: u64,
    /// Ground-truth objects across the tenant's frames.
    pub total_gt: u64,
    /// Latency quantiles over the tenant's frames.
    pub latency: LatencyQuantiles,
}

/// Everything a fleet run measured, reproducible from the spec's seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// The spec's master seed (provenance).
    pub seed: u64,
    /// Sessions that ran.
    pub sessions: usize,
    /// Total frames submitted.
    pub frames: u64,
    /// Frames uploaded to the cloud.
    pub uploads: u64,
    /// Fraction of frames uploaded.
    pub upload_ratio: f64,
    /// Total bytes shipped edge→cloud.
    pub uplink_bytes: u64,
    /// Configured-deadline misses.
    pub deadline_misses: u64,
    /// Traced-link give-ups served locally.
    pub link_fallbacks: u64,
    /// Admission refusals served locally.
    pub admission_fallbacks: u64,
    /// Latency quantiles over all frames.
    pub latency: LatencyQuantiles,
    /// Per-tenant breakdowns, tenant id ascending (only tenants that
    /// received sessions appear).
    pub tenants: Vec<TenantReport>,
    /// Fraction of frames that would miss each hypothetical deadline
    /// (fixed grid, monotone non-increasing in the deadline).
    pub miss_curve: Vec<MissPoint>,
    /// Per-shard cloud stats.
    pub cloud: Vec<CloudStats>,
    /// Virtual time of the last completed frame.
    pub completed_horizon_s: f64,
}

/// Nearest-rank quantile over an ascending-sorted sample:
/// `sorted[ceil(q·n) − 1]`, with the rank clamped into `[1, n]`. The
/// convention — pinned by exact-value unit tests — is: `q = 0.0` reads
/// the minimum, `q = 1.0` the maximum, a single sample answers every
/// `q`, two samples split at `q = 0.5` inclusive to the lower, and an
/// empty sample reads `0`. No interpolation: every reported quantile is
/// a latency that actually occurred.
fn quantile(sorted: &[f32], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx] as f64
}

fn quantiles_of(sorted: &[f32]) -> LatencyQuantiles {
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().map(|&l| l as f64).sum::<f64>() / sorted.len() as f64
    };
    LatencyQuantiles {
        mean_s: mean,
        p50_s: quantile(sorted, 0.50),
        p90_s: quantile(sorted, 0.90),
        p99_s: quantile(sorted, 0.99),
        p999_s: quantile(sorted, 0.999),
        max_s: sorted.last().copied().unwrap_or(0.0) as f64,
    }
}

#[derive(Default, Clone)]
struct TenantAccum {
    sessions: usize,
    frames: u64,
    uploads: u64,
    deadline_misses: u64,
    detected: u64,
    total_gt: u64,
}

/// The aggregate path's per-shard consumer: latency samples tagged by
/// tenant, running per-tenant sums, and fleet-wide counters. Everything
/// here merges across shards without loss: the counters are exact
/// integer sums, the horizon is an `f64` max, and the samples are
/// re-sorted globally before any quantile is read — so per-shard
/// accumulation followed by a shard-ordered merge is bit-identical to
/// the single-threaded fold.
struct Aggregate {
    samples: Vec<(u32, f32)>,
    accums: Vec<TenantAccum>,
    uplink_bytes: u64,
    link_fallbacks: u64,
    admission_fallbacks: u64,
    completed_horizon_s: f64,
}

impl Aggregate {
    fn new(tenants: usize) -> Aggregate {
        Aggregate {
            samples: Vec::new(),
            accums: vec![TenantAccum::default(); tenants],
            uplink_bytes: 0,
            link_fallbacks: 0,
            admission_fallbacks: 0,
            completed_horizon_s: 0.0,
        }
    }

    /// Folds another shard's aggregate into this one (called in shard
    /// order, though every merged quantity is order-independent).
    fn merge(&mut self, other: Aggregate) {
        self.samples.extend(other.samples);
        for (a, b) in self.accums.iter_mut().zip(other.accums) {
            a.sessions += b.sessions;
            a.frames += b.frames;
            a.uploads += b.uploads;
            a.deadline_misses += b.deadline_misses;
            a.detected += b.detected;
            a.total_gt += b.total_gt;
        }
        self.uplink_bytes += other.uplink_bytes;
        self.link_fallbacks += other.link_fallbacks;
        self.admission_fallbacks += other.admission_fallbacks;
        self.completed_horizon_s = self.completed_horizon_s.max(other.completed_horizon_s);
    }
}

impl ShardConsumer for Aggregate {
    fn on_frame(&mut self, tenant: u32, result: &FrameResult) {
        self.samples.push((tenant, result.breakdown.total() as f32));
        self.completed_horizon_s = self.completed_horizon_s.max(result.completed_at);
    }

    fn on_session(&mut self, _session: u32, tenant: u32, report: SessionReport) {
        let a = &mut self.accums[tenant as usize];
        a.sessions += 1;
        a.frames += report.frames as u64;
        a.uploads += report.uploads as u64;
        a.deadline_misses += report.deadline_misses as u64;
        a.detected += report.detected as u64;
        a.total_gt += report.total_gt as u64;
        self.uplink_bytes += report.uplink_bytes;
        self.link_fallbacks += report.link_fallbacks as u64;
        self.admission_fallbacks += report.admission_fallbacks as u64;
    }
}

/// Runs the fleet through the event core and aggregates: p50/p99/p999
/// latency, per-tenant breakdowns, a deadline-miss curve, and per-shard
/// cloud stats. Memory stays O(frames) for the latency samples plus
/// O(live sessions) for the machines — per-session reports are folded
/// in as sessions finish, never collected. Uses [`MetricsMode::Compact`]
/// (see [`run_fleet_with`] to override).
pub fn run_fleet(spec: &FleetSpec) -> Result<FleetReport, FleetError> {
    run_fleet_with(spec, MetricsMode::Compact)
}

/// [`run_fleet`] with an explicit [`MetricsMode`]. Both modes produce
/// bit-identical reports (pinned in `tests/fleet.rs`); `Full` exists for
/// before/after memory measurement and as the conservative fallback.
pub fn run_fleet_with(spec: &FleetSpec, mode: MetricsMode) -> Result<FleetReport, FleetError> {
    let pop = Population::generate(spec);
    let shards = run_event_core(spec, &pop, mode, || Aggregate::new(spec.tenants))?;
    let mut agg = Aggregate::new(spec.tenants);
    let mut cloud = Vec::with_capacity(spec.shards);
    for (shard_agg, stats) in shards {
        agg.merge(shard_agg);
        cloud.push(stats);
    }
    let Aggregate {
        mut samples,
        accums,
        uplink_bytes,
        link_fallbacks,
        admission_fallbacks,
        completed_horizon_s,
    } = agg;
    // Global quantiles and the miss curve over every frame's latency.
    let mut all: Vec<f32> = samples.iter().map(|&(_, l)| l).collect();
    all.sort_unstable_by(f32::total_cmp);
    let latency = quantiles_of(&all);
    let miss_curve = MISS_GRID
        .iter()
        .map(|&d| MissPoint {
            deadline_s: d,
            miss_fraction: if all.is_empty() {
                0.0
            } else {
                // First sorted index above the deadline = count <= d.
                let below = all.partition_point(|&l| l as f64 <= d);
                (all.len() - below) as f64 / all.len() as f64
            },
        })
        .collect();
    // Per-tenant quantiles: partition the samples by tenant once.
    samples.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut tenants = Vec::new();
    let mut lo = 0;
    while lo < samples.len() {
        let tenant = samples[lo].0;
        let hi = samples[lo..].partition_point(|&(t, _)| t == tenant) + lo;
        let sorted: Vec<f32> = samples[lo..hi].iter().map(|&(_, l)| l).collect();
        let a = &accums[tenant as usize];
        tenants.push(TenantReport {
            tenant,
            sessions: a.sessions,
            frames: a.frames,
            uploads: a.uploads,
            deadline_misses: a.deadline_misses,
            detected: a.detected,
            total_gt: a.total_gt,
            latency: quantiles_of(&sorted),
        });
        lo = hi;
    }
    let frames = accums.iter().map(|a| a.frames).sum::<u64>();
    let uploads = accums.iter().map(|a| a.uploads).sum::<u64>();
    Ok(FleetReport {
        seed: spec.seed,
        sessions: spec.sessions,
        frames,
        uploads,
        upload_ratio: if frames == 0 {
            0.0
        } else {
            uploads as f64 / frames as f64
        },
        uplink_bytes,
        deadline_misses: accums.iter().map(|a| a.deadline_misses).sum(),
        link_fallbacks,
        admission_fallbacks,
        latency,
        tenants,
        miss_curve,
        cloud,
        completed_horizon_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> FleetSpec {
        FleetSpec {
            frames_per_session: 3,
            scene_pool: 8,
            shards: 2,
            ..FleetSpec::new(40)
        }
    }

    #[test]
    fn population_is_reproducible() {
        let spec = tiny_spec();
        assert_eq!(Population::generate(&spec), Population::generate(&spec));
        let other = FleetSpec {
            seed: spec.seed + 1,
            ..spec.clone()
        };
        assert_ne!(Population::generate(&spec), Population::generate(&other));
    }

    #[test]
    fn tenant_sizes_are_zipf_skewed() {
        let spec = FleetSpec {
            zipf_exponent: 1.5,
            ..FleetSpec::new(2000)
        };
        let pop = Population::generate(&spec);
        let mut counts = vec![0usize; spec.tenants];
        for p in &pop.sessions {
            counts[p.tenant as usize] += 1;
        }
        assert!(
            counts[0] > 4 * counts[spec.tenants - 1].max(1),
            "tenant 0 ({}) should dwarf the tail ({})",
            counts[0],
            counts[spec.tenants - 1]
        );
    }

    #[test]
    fn arrivals_stay_inside_the_window_and_sorted() {
        let pop = Population::generate(&tiny_spec());
        let mut last = 0.0f64;
        for p in &pop.sessions {
            assert!(p.start_s >= last, "stratified starts are sorted by id");
            assert!(p.start_s < tiny_spec().horizon_s + 1e-9);
            last = p.start_s;
        }
    }

    #[test]
    fn event_core_matches_threaded_reference() {
        let spec = tiny_spec();
        let (a_reports, a_stats) = run_fleet_sessions(&spec).expect("healthy drive");
        let (b_reports, b_stats) = run_fleet_reference(&spec);
        assert_eq!(a_reports, b_reports);
        assert_eq!(a_stats, b_stats);
    }

    #[test]
    fn fleet_report_is_deterministic_and_consistent() {
        let spec = tiny_spec();
        let a = run_fleet(&spec).expect("healthy drive");
        let b = run_fleet(&spec).expect("healthy drive");
        assert_eq!(a, b);
        assert_eq!(a.frames, (spec.sessions as u64) * 3);
        assert!(a.latency.p50_s <= a.latency.p99_s);
        assert!(a.latency.p99_s <= a.latency.p999_s);
        assert!(a.latency.p999_s <= a.latency.max_s);
        for pair in a.miss_curve.windows(2) {
            assert!(pair[0].miss_fraction >= pair[1].miss_fraction);
        }
        assert_eq!(
            a.tenants.iter().map(|t| t.frames).sum::<u64>(),
            a.frames,
            "tenant breakdowns partition the fleet"
        );
        assert!(
            a.tenants.iter().map(|t| t.total_gt).sum::<u64>() > 0,
            "counting metrics survive the compact accumulator"
        );
    }

    #[test]
    fn parallel_drive_matches_sequential_for_any_thread_count() {
        let sequential = run_fleet(&FleetSpec {
            threads: 1,
            ..tiny_spec()
        })
        .expect("healthy drive");
        for threads in [2, 4] {
            let parallel = run_fleet(&FleetSpec {
                threads,
                ..tiny_spec()
            })
            .expect("healthy drive");
            assert_eq!(
                sequential, parallel,
                "threads={threads} must be bit-identical"
            );
        }
    }

    #[test]
    fn compact_and_full_metrics_agree_bit_for_bit() {
        let spec = tiny_spec();
        let full = run_fleet_with(&spec, MetricsMode::Full).expect("healthy drive");
        let compact = run_fleet_with(&spec, MetricsMode::Compact).expect("healthy drive");
        assert_eq!(full, compact);
    }

    #[test]
    fn thread_resolution_is_capped_and_env_overridable() {
        let spec = tiny_spec(); // shards = 2, threads = 0 (auto)
        assert_eq!(fleet_threads_from(Some("8"), &spec), 2, "capped by shards");
        assert_eq!(fleet_threads_from(Some("1"), &spec), 1);
        let pinned = FleetSpec {
            threads: 4,
            ..spec.clone()
        };
        assert_eq!(
            fleet_threads_from(Some("1"), &pinned),
            2,
            "an explicit spec.threads wins over the env (still shard-capped)"
        );
        // Zero or garbage env with auto spec falls back to the host
        // default (at least 1, still shard-capped).
        let auto = fleet_threads_from(Some("nope"), &spec);
        assert!((1..=2).contains(&auto));
    }

    #[test]
    fn scene_indexing_is_shared_not_duplicated() {
        let pool = 12;
        // The shared helper computes what both runtimes historically
        // spelled inline.
        for i in 0..40usize {
            for frame in 0..9u32 {
                assert_eq!(
                    scene_index(i, frame, pool),
                    (i % pool + frame as usize) % pool
                );
            }
        }
        // Why the helper exists: the event core used to compute
        // `(scene_off + frame) % pool` from a stored offset while the
        // reference recomputed `(i % pool + frame) % pool` inline. They
        // agreed only because `scene_off == i % pool`; a population whose
        // offset drifted from that (tenant striping, per-shard rotation)
        // would have silently diverged on every frame:
        let i = 3usize;
        let drifted_off = 7usize;
        for frame in 0..8u32 {
            assert_ne!(
                (drifted_off + frame as usize) % pool,
                (i % pool + frame as usize) % pool,
                "duplicated formulas diverge as soon as the offset is not i % pool"
            );
        }
    }

    #[test]
    fn quantile_convention_is_nearest_rank() {
        // A single sample answers every q.
        assert_eq!(quantile(&[2.5], 0.0), 2.5);
        assert_eq!(quantile(&[2.5], 0.5), 2.5);
        assert_eq!(quantile(&[2.5], 1.0), 2.5);
        // Two samples split at q = 0.5, inclusive to the lower.
        assert_eq!(quantile(&[1.0, 2.0], 0.0), 1.0);
        assert_eq!(quantile(&[1.0, 2.0], 0.5), 1.0);
        assert_eq!(quantile(&[1.0, 2.0], 0.500_01), 2.0);
        assert_eq!(quantile(&[1.0, 2.0], 1.0), 2.0);
        // q = 0 reads the minimum, q = 1 the maximum.
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 5.0);
        // Nearest rank on the p-grid the report uses: p99 of 5 samples is
        // the 5th (ceil(0.99 · 5) = 5), p50 the 3rd.
        assert_eq!(quantile(&s, 0.99), 5.0);
        assert_eq!(quantile(&s, 0.50), 3.0);
        // Empty reads 0.
        assert_eq!(quantile(&[], 0.9), 0.0);
    }

    #[test]
    fn poisoned_inline_mailbox_surfaces_as_typed_error() {
        let infra = InlineInfra::default();
        // Poison the mailbox the way a mid-reply panic would: die while
        // holding the lock.
        let poisoner = infra.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = poisoner.mailbox.lock().unwrap();
            panic!("frame handler died mid-reply");
        }));
        // Every subsequent mailbox access reports the poison through the
        // shard boundary as a typed error naming the shard.
        let err = shard_guard(3, || infra.pop_answer()).expect_err("poison must surface");
        assert_eq!(err.shard, 3);
        assert!(
            err.message.contains("poisoned"),
            "diagnostic names the poison, got: {}",
            err.message
        );
        assert!(err.to_string().contains("shard 3"));
        // A healthy drive still returns Ok.
        assert!(run_fleet(&tiny_spec()).is_ok());
    }

    #[test]
    fn shard_guard_passes_values_and_catches_panics() {
        assert_eq!(shard_guard(0, || 41 + 1), Ok(42));
        let err = shard_guard(7, || -> usize { panic!("boom {}", 9) }).unwrap_err();
        assert_eq!(
            err,
            FleetError {
                shard: 7,
                message: "boom 9".to_string()
            }
        );
    }
}
