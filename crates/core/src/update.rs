//! The model-update loop: cloud-driven discriminator recalibration with
//! versioned rollout, divergence detection, and rollback.
//!
//! The paper calibrates the difficult-case discriminator once and freezes
//! it, so any distribution drift silently decays the easy/hard split. This
//! module closes that loop, following the pseudo-label cloud-update line of
//! work: every frame the big model serves is also a free *pseudo-label*
//! (the big model saw more objects than the edge's small model reported →
//! the frame really was difficult), so the cloud can re-fit the
//! discriminator's count/area thresholds with the same grid search used at
//! initial calibration ([`crate::calibrate_count_area`]) — no ground truth
//! required.
//!
//! The pieces:
//!
//! * [`CalibrationUpdate`] — the versioned artifact: refit [`Thresholds`],
//!   a sorted difficulty-score vector that re-seeds
//!   [`QuantileStream`](crate::QuantileStream) state, and the rollout
//!   policy (holdout window + divergence bound) the cloud wants edges to
//!   apply it under. It is also a wire frame (JSON and binary codecs; see
//!   [`crate::wire`]) and a persisted artifact with a format-version gate
//!   (see [`crate::PersistError::UnsupportedVersion`]).
//! * [`UpdateConfig`] — cloud-side knobs: the refit cadence in *virtual*
//!   seconds and the minimum pseudo-label count per refit, plus the rollout
//!   policy stamped into each artifact.
//! * `UpdatePublisher` (crate-private) — accumulates pseudo-labels in served
//!   order and refits when a served frame's arrival crosses an epoch
//!   boundary; lives inside the cloud worker.
//! * `UpdateClient` (crate-private) — the edge-side state machine: updates
//!   are stashed when received and applied *atomically between frames*;
//!   each apply opens a probation window, and if the upload fraction over
//!   that window diverges from the pre-update holdout beyond the bound,
//!   the edge restores the snapshot it took before applying and reverts to
//!   the last good version.
//!
//! Determinism: epochs are pure functions of virtual arrival time, the
//! refit is a deterministic grid search over the accumulated examples in
//! served order, and update frames piggyback the answer path (reserved
//! ticket [`UPDATE_TICKET`]) with zero extra virtual time and zero RNG
//! draws — so an update-free run is bit-identical to a build without this
//! module, and an update-enabled run replays bit-identically from its
//! seeds.

use crate::{calibrate_count_area, LabeledExample, Thresholds};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Reserved ticket value marking a calibration-update frame on the
/// cloud→edge answer path.
///
/// Real tickets count up from zero, so the all-ones value can never
/// collide with a frame answer; transports and sessions route `(ticket,
/// frame)` pairs untouched, and the edge intercepts this ticket before
/// frame-answer decoding.
pub const UPDATE_TICKET: u64 = u64::MAX;

/// The [`CalibrationUpdate::format`] value written by this build.
///
/// Loading a persisted artifact with a *larger* format is a typed error
/// ([`crate::PersistError::UnsupportedVersion`]), never a panic: a fleet
/// mid-upgrade can see artifacts from the future.
pub const UPDATE_FORMAT: u32 = 1;

/// A versioned calibration artifact pushed from the cloud to its edges.
///
/// Produced by the cloud's periodic refit over accumulated pseudo-labels;
/// applied atomically between frames on the edge (see the *Model-update
/// loop* section of [`crate::CloudServer`]'s module docs). The artifact
/// carries everything an edge needs to adopt — and, on divergence, to
/// judge — the new calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationUpdate {
    /// Artifact format version (see [`UPDATE_FORMAT`]): the persistence /
    /// wire compatibility gate, distinct from the rollout `version`.
    pub format: u32,
    /// Monotonically increasing rollout version (first refit = 1; `0`
    /// denotes the factory calibration an edge booted with).
    pub version: u64,
    /// Virtual-time epoch index (`floor(arrival / epoch_s)`) whose
    /// accumulated pseudo-labels produced this refit.
    pub epoch: u64,
    /// The refit thresholds (`conf` is the regressed noise-filter value
    /// carried through the refit; `count`/`area` come from the grid).
    pub thresholds: Thresholds,
    /// Difficulty scores of the epoch's uploaded frames, sorted ascending
    /// (higher = harder): re-seeds [`crate::QuantileStream`] history so
    /// quantile policies re-rank against the drifted distribution.
    pub quantile_scores: Vec<f64>,
    /// Number of pseudo-labelled examples behind the refit.
    pub examples: usize,
    /// Training accuracy of the refit thresholds on those examples.
    pub accuracy: f64,
    /// Rollout policy: how many post-apply routing decisions the edge
    /// holds the update on probation.
    pub holdout: usize,
    /// Rollout policy: the allowed absolute change in upload fraction
    /// between the pre-update holdout window and the probation window;
    /// beyond it the edge rolls back.
    pub divergence: f64,
}

impl CalibrationUpdate {
    /// A version-0 stand-in for the factory calibration (used as the
    /// baseline artifact in tests and tooling; edges never receive it).
    pub fn factory(thresholds: Thresholds) -> CalibrationUpdate {
        CalibrationUpdate {
            format: UPDATE_FORMAT,
            version: 0,
            epoch: 0,
            thresholds,
            quantile_scores: Vec::new(),
            examples: 0,
            accuracy: 1.0,
            holdout: UpdateConfig::default().holdout,
            divergence: UpdateConfig::default().divergence,
        }
    }
}

/// Configuration of the cloud-side update loop
/// ([`crate::CloudConfig::updates`]; `None` disables the loop entirely —
/// the bit-identical default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateConfig {
    /// Refit cadence in *virtual* seconds: a refit fires when a served
    /// frame's arrival crosses a multiple of this (and enough examples
    /// accumulated), so epochs are pure functions of virtual time.
    pub epoch_s: f64,
    /// Minimum accumulated pseudo-labels before a refit may fire; epochs
    /// with fewer keep accumulating into the next.
    pub min_examples: usize,
    /// Rollout policy stamped into each artifact: probation length in
    /// routing decisions (see [`CalibrationUpdate::holdout`]).
    pub holdout: usize,
    /// Rollout policy stamped into each artifact: divergence bound on the
    /// upload-fraction delta (see [`CalibrationUpdate::divergence`]).
    pub divergence: f64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            epoch_s: 60.0,
            min_examples: 32,
            holdout: 16,
            divergence: 0.35,
        }
    }
}

impl UpdateConfig {
    /// Panics with a config error if a field is out of range — called at
    /// spawn time so a bad configuration fails on the caller's thread.
    pub(crate) fn assert_valid(&self) {
        assert!(
            self.epoch_s > 0.0 && self.epoch_s.is_finite(),
            "update epoch_s must be positive and finite"
        );
        assert!(self.min_examples >= 1, "min_examples must be at least 1");
        assert!(self.holdout >= 1, "holdout must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.divergence),
            "divergence bound must be in [0, 1]"
        );
    }
}

/// A restorable snapshot of a policy's calibrated state, taken right
/// before a [`CalibrationUpdate`] is applied so a divergence trip can roll
/// back (see [`crate::OffloadPolicy::calibration_snapshot`]).
///
/// Both fields are optional because different policies carry different
/// calibrated state: the discriminator snapshots thresholds, a
/// [`crate::QuantileStream`] its score history.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationSnapshot {
    /// The discriminator thresholds in force before the update, if the
    /// policy has any.
    pub thresholds: Option<Thresholds>,
    /// The quantile score history (ascending difficulty convention, as in
    /// [`CalibrationUpdate::quantile_scores`]) before the update, if the
    /// policy keeps one.
    pub quantile_scores: Option<Vec<f64>>,
}

impl CalibrationSnapshot {
    /// `true` when the snapshot carries no restorable state.
    pub fn is_empty(&self) -> bool {
        self.thresholds.is_none() && self.quantile_scores.is_none()
    }
}

/// Cloud-side pseudo-label accumulator and refitter (one per cloud
/// worker). Deterministic: examples arrive in served order, the refit is
/// a pure grid search, and the epoch clock is virtual arrival time.
#[derive(Debug)]
pub(crate) struct UpdatePublisher {
    cfg: UpdateConfig,
    /// Epoch index of the most recently observed frame.
    epoch: u64,
    /// Pseudo-labels accumulated since the last refit (served order).
    examples: Vec<LabeledExample>,
    /// Difficulty scores of those frames (wire-header order = served order).
    scores: Vec<f64>,
    current: Option<CalibrationUpdate>,
    /// Refits produced so far (mirrors the current version).
    pub(crate) published: u64,
}

impl UpdatePublisher {
    pub(crate) fn new(cfg: UpdateConfig) -> Self {
        cfg.assert_valid();
        UpdatePublisher {
            cfg,
            epoch: 0,
            examples: Vec::new(),
            scores: Vec::new(),
            current: None,
            published: 0,
        }
    }

    /// The most recent artifact, if any refit has fired.
    pub(crate) fn current(&self) -> Option<&CalibrationUpdate> {
        self.current.as_ref()
    }

    /// The current rollout version (0 before the first refit).
    pub(crate) fn version(&self) -> u64 {
        self.current.as_ref().map_or(0, |u| u.version)
    }

    /// Records one served frame's pseudo-label; returns a freshly refit
    /// artifact when this frame's arrival crosses an epoch boundary with
    /// at least `min_examples` accumulated.
    ///
    /// The boundary check runs *before* the new example is admitted: the
    /// crossing frame belongs to the new epoch.
    pub(crate) fn observe(
        &mut self,
        example: LabeledExample,
        score: f64,
        arrival_s: f64,
    ) -> Option<CalibrationUpdate> {
        let idx = (arrival_s / self.cfg.epoch_s) as u64;
        let fresh = if idx > self.epoch && self.examples.len() >= self.cfg.min_examples {
            Some(self.refit(idx))
        } else {
            None
        };
        self.epoch = self.epoch.max(idx);
        self.examples.push(example);
        self.scores.push(score);
        fresh
    }

    fn refit(&mut self, epoch: u64) -> CalibrationUpdate {
        let (count, area, stats) = calibrate_count_area(&self.examples);
        let examples = self.examples.len();
        let mut quantile_scores = std::mem::take(&mut self.scores);
        quantile_scores.sort_by(|a, b| a.partial_cmp(b).expect("finite difficulty scores"));
        self.examples.clear();
        self.published += 1;
        let update = CalibrationUpdate {
            format: UPDATE_FORMAT,
            version: self.published,
            epoch,
            // The noise-filter threshold is regressed from raw scores the
            // cloud never sees; the refit carries the paper's regressed
            // optimum through unchanged (calibrate_count_area's own
            // placeholder convention).
            thresholds: Thresholds {
                conf: 0.2,
                count,
                area,
            },
            quantile_scores,
            examples,
            accuracy: stats.accuracy,
            holdout: self.cfg.holdout,
            divergence: self.cfg.divergence,
        };
        self.current = Some(update.clone());
        update
    }
}

/// Edge-side update state machine: stash → apply-between-frames →
/// probation → (on divergence) rollback.
#[derive(Debug)]
pub(crate) struct UpdateClient {
    /// Newest update received but not yet applied.
    pending: Option<CalibrationUpdate>,
    /// Rollout version currently in force (0 = factory calibration).
    pub(crate) active_version: u64,
    /// Updates applied over the session's lifetime.
    pub(crate) applied: u64,
    /// Divergence rollbacks over the session's lifetime.
    pub(crate) rollbacks: u64,
    /// Recent routing decisions (true = upload), the pre-update holdout.
    window: VecDeque<bool>,
    /// Capacity of `window`: the last-applied artifact's holdout.
    window_cap: usize,
    probation: Option<Probation>,
}

#[derive(Debug)]
struct Probation {
    left: usize,
    decided: usize,
    uploads: usize,
    pre_fraction: f64,
    divergence: f64,
    fallback: CalibrationSnapshot,
    fallback_version: u64,
}

impl UpdateClient {
    pub(crate) fn new() -> Self {
        UpdateClient {
            pending: None,
            active_version: 0,
            applied: 0,
            rollbacks: 0,
            window: VecDeque::new(),
            window_cap: UpdateConfig::default().holdout,
            probation: None,
        }
    }

    /// Stashes a received update for the next between-frames apply point.
    /// Only an update strictly newer than both the active version and any
    /// already-stashed one is kept (versions are monotone per cloud, so a
    /// stale frame — e.g. replayed after a reconnect — is a no-op).
    pub(crate) fn stash(&mut self, update: CalibrationUpdate) {
        if update.version > self.active_version
            && self
                .pending
                .as_ref()
                .is_none_or(|p| update.version > p.version)
        {
            self.pending = Some(update);
        }
    }

    /// Takes the stashed update, if any (the caller applies it to its
    /// policy and reports back via [`UpdateClient::note_applied`]).
    pub(crate) fn take_pending(&mut self) -> Option<CalibrationUpdate> {
        self.pending.take()
    }

    /// Records a successful apply: snapshots become the rollback target
    /// and a probation window opens — unless no decision history exists
    /// yet (nothing to diverge from) or the snapshot is empty (nothing to
    /// restore).
    pub(crate) fn note_applied(
        &mut self,
        update: &CalibrationUpdate,
        fallback: CalibrationSnapshot,
    ) {
        let fallback_version = self.active_version;
        self.applied += 1;
        self.active_version = update.version;
        self.window_cap = update.holdout.max(1);
        while self.window.len() > self.window_cap {
            self.window.pop_front();
        }
        if self.window.is_empty() || fallback.is_empty() {
            self.probation = None;
            return;
        }
        let pre_fraction =
            self.window.iter().filter(|&&u| u).count() as f64 / self.window.len() as f64;
        // A new update during probation restarts probation against the
        // state right before *this* apply.
        self.probation = Some(Probation {
            left: update.holdout.max(1),
            decided: 0,
            uploads: 0,
            pre_fraction,
            divergence: update.divergence,
            fallback,
            fallback_version,
        });
    }

    /// Records one routing decision. When this decision closes a probation
    /// window whose upload fraction diverged beyond the bound, returns the
    /// snapshot to restore (the caller re-applies it to its policy) and
    /// the version being reverted to.
    pub(crate) fn record_decision(&mut self, upload: bool) -> Option<(CalibrationSnapshot, u64)> {
        self.window.push_back(upload);
        while self.window.len() > self.window_cap {
            self.window.pop_front();
        }
        let probation = self.probation.as_mut()?;
        probation.decided += 1;
        probation.uploads += usize::from(upload);
        probation.left -= 1;
        if probation.left > 0 {
            return None;
        }
        let p = self.probation.take().expect("probation is live");
        let post_fraction = p.uploads as f64 / p.decided as f64;
        if (post_fraction - p.pre_fraction).abs() > p.divergence {
            self.rollbacks += 1;
            self.active_version = p.fallback_version;
            return Some((p.fallback, p.fallback_version));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CaseKind, SemanticFeatures};

    fn example(true_count: usize, area: f64, difficult: bool) -> LabeledExample {
        LabeledExample {
            scene_id: 0,
            true_count,
            true_min_area: Some(area),
            features: SemanticFeatures {
                predicted_count: true_count,
                estimated_count: true_count,
                estimated_min_area: Some(area),
            },
            label: if difficult {
                CaseKind::Difficult
            } else {
                CaseKind::Easy
            },
        }
    }

    fn publisher(epoch_s: f64, min_examples: usize) -> UpdatePublisher {
        UpdatePublisher::new(UpdateConfig {
            epoch_s,
            min_examples,
            ..UpdateConfig::default()
        })
    }

    #[test]
    fn refit_fires_on_epoch_boundary_with_enough_examples() {
        let mut p = publisher(10.0, 3);
        // Separable data: high counts are difficult.
        assert!(p.observe(example(5, 0.4, true), 3.0, 1.0).is_none());
        assert!(p.observe(example(1, 0.4, false), 1.0, 2.0).is_none());
        assert!(p.observe(example(6, 0.4, true), 4.0, 3.0).is_none());
        // Crosses the t=10 boundary with 3 examples accumulated: refit.
        let u = p
            .observe(example(1, 0.4, false), 1.5, 11.0)
            .expect("boundary crossing refits");
        assert_eq!(u.version, 1);
        assert_eq!(u.epoch, 1);
        assert_eq!(u.format, UPDATE_FORMAT);
        assert!(u.thresholds.count >= 1);
        assert_eq!(u.quantile_scores, vec![1.0, 3.0, 4.0], "sorted ascending");
        assert_eq!(p.version(), 1);
        assert_eq!(p.current().unwrap(), &u);
    }

    #[test]
    fn starved_epochs_keep_accumulating() {
        let mut p = publisher(10.0, 3);
        assert!(p.observe(example(5, 0.4, true), 3.0, 1.0).is_none());
        // Boundary crossed but only 1 example: no refit, keep the example.
        assert!(p.observe(example(1, 0.4, false), 1.0, 12.0).is_none());
        assert!(p.observe(example(6, 0.4, true), 4.0, 13.0).is_none());
        // Next boundary: 3 accumulated → refit over all of them.
        let u = p.observe(example(1, 0.4, false), 1.5, 21.0).unwrap();
        assert_eq!(u.quantile_scores.len(), 3);
        assert_eq!(u.version, 1);
    }

    #[test]
    fn versions_are_monotone() {
        let mut p = publisher(10.0, 1);
        let mut versions = Vec::new();
        for i in 0..5u64 {
            let t = 5.0 + i as f64 * 10.0;
            if let Some(u) = p.observe(example(3, 0.2, true), 1.0, t) {
                versions.push(u.version);
            }
        }
        assert_eq!(versions, vec![1, 2, 3, 4]);
    }

    #[test]
    fn client_stash_keeps_newest_and_drops_stale() {
        let mut c = UpdateClient::new();
        let mut u1 = CalibrationUpdate::factory(Thresholds::paper());
        u1.version = 1;
        let mut u2 = u1.clone();
        u2.version = 2;
        c.stash(u1.clone());
        c.stash(u2.clone());
        c.stash(u1.clone()); // stale replay: ignored
        assert_eq!(c.take_pending().unwrap().version, 2);
        assert!(c.take_pending().is_none());
        // Updates at or below the active version are ignored too.
        c.active_version = 3;
        c.stash(u2);
        assert!(c.take_pending().is_none());
    }

    #[test]
    fn divergence_trips_rollback_and_reverts_version() {
        let mut c = UpdateClient::new();
        // Build pre-update history: 0 % uploads.
        for _ in 0..8 {
            assert!(c.record_decision(false).is_none());
        }
        let mut u = CalibrationUpdate::factory(Thresholds::paper());
        u.version = 1;
        u.holdout = 4;
        u.divergence = 0.5;
        let snap = CalibrationSnapshot {
            thresholds: Some(Thresholds::paper()),
            quantile_scores: None,
        };
        c.note_applied(&u, snap.clone());
        assert_eq!(c.active_version, 1);
        assert_eq!(c.applied, 1);
        // Probation: 4 decisions, all uploads → fraction jumps 0 → 1.
        assert!(c.record_decision(true).is_none());
        assert!(c.record_decision(true).is_none());
        assert!(c.record_decision(true).is_none());
        let (restored, version) = c.record_decision(true).expect("divergence trips");
        assert_eq!(restored, snap);
        assert_eq!(version, 0);
        assert_eq!(c.active_version, 0);
        assert_eq!(c.rollbacks, 1);
    }

    #[test]
    fn small_divergence_survives_probation() {
        let mut c = UpdateClient::new();
        for i in 0..8 {
            assert!(c.record_decision(i % 2 == 0).is_none());
        }
        let mut u = CalibrationUpdate::factory(Thresholds::paper());
        u.version = 1;
        u.holdout = 4;
        u.divergence = 0.5;
        c.note_applied(
            &u,
            CalibrationSnapshot {
                thresholds: Some(Thresholds::paper()),
                quantile_scores: None,
            },
        );
        // Probation fraction 0.5 vs pre 0.5: no trip.
        for i in 0..4 {
            assert!(c.record_decision(i % 2 == 0).is_none());
        }
        assert_eq!(c.active_version, 1);
        assert_eq!(c.rollbacks, 0);
    }

    #[test]
    fn apply_without_history_or_snapshot_skips_probation() {
        let mut c = UpdateClient::new();
        let mut u = CalibrationUpdate::factory(Thresholds::paper());
        u.version = 1;
        // No decision history yet: nothing to diverge from.
        c.note_applied(
            &u,
            CalibrationSnapshot {
                thresholds: Some(Thresholds::paper()),
                quantile_scores: None,
            },
        );
        for _ in 0..32 {
            assert!(c.record_decision(true).is_none());
        }
        assert_eq!(c.rollbacks, 0);

        // History but an empty snapshot: nothing to restore.
        let mut c = UpdateClient::new();
        for _ in 0..8 {
            let _ = c.record_decision(false);
        }
        let mut u2 = u.clone();
        u2.version = 2;
        c.note_applied(&u2, CalibrationSnapshot::default());
        for _ in 0..32 {
            assert!(c.record_decision(true).is_none());
        }
        assert_eq!(c.rollbacks, 0);
    }

    #[test]
    #[should_panic(expected = "epoch_s")]
    fn zero_epoch_rejected() {
        let _ = UpdatePublisher::new(UpdateConfig {
            epoch_s: 0.0,
            ..UpdateConfig::default()
        });
    }
}
