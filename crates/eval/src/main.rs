//! CLI for the experiment harness.
//!
//! ```bash
//! eval [--scale S] [--render WxH] [--csv DIR] [ids...]
//! ```
//!
//! With no ids, runs everything. `--scale` multiplies the published dataset
//! sizes (default 1.0 = full scale); `--csv DIR` additionally writes each
//! table as `DIR/<id>.csv`.

use eval::{run_experiment, ExpConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--scale needs a number in (0, 1]");
                    return ExitCode::FAILURE;
                };
                if !(v > 0.0 && v <= 1.0) {
                    eprintln!("--scale must be in (0, 1]");
                    return ExitCode::FAILURE;
                }
                cfg.scale = v;
            }
            "--render" => {
                let Some(v) = args.next() else {
                    eprintln!("--render needs WxH (e.g. 128x96)");
                    return ExitCode::FAILURE;
                };
                let parts: Vec<&str> = v.split('x').collect();
                match (parts.first(), parts.get(1)) {
                    (Some(w), Some(h)) => match (w.parse::<usize>(), h.parse::<usize>()) {
                        (Ok(w), Ok(h)) if w > 0 && h > 0 => cfg.render_size = (w, h),
                        _ => {
                            eprintln!("--render needs positive WxH");
                            return ExitCode::FAILURE;
                        }
                    },
                    _ => {
                        eprintln!("--render needs WxH (e.g. 128x96)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--csv" => {
                csv_dir = args.next();
                if csv_dir.is_none() {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            }
            "--help" | "-h" => {
                println!("usage: eval [--scale S] [--render WxH] [--csv DIR] [ids...]");
                println!("ids: {} or 'all'", eval::ALL_EXPERIMENTS.join(", "));
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }

    eprintln!(
        "# smallbig experiment harness — scale {:.3}, render {}x{}",
        cfg.scale, cfg.render_size.0, cfg.render_size.1
    );
    for id in &ids {
        match run_experiment(id, &cfg) {
            Ok(reports) => {
                for report in reports {
                    println!("{report}");
                    if let Some(dir) = &csv_dir {
                        let path = format!("{dir}/{}.csv", report.id);
                        if let Err(e) = std::fs::create_dir_all(dir)
                            .and_then(|_| std::fs::write(&path, report.table.to_csv()))
                        {
                            eprintln!("warning: could not write {path}: {e}");
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
