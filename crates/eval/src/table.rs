//! Plain-text table rendering for experiment reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered experiment table.
///
/// # Examples
///
/// ```
/// use eval::Table;
///
/// let mut t = Table::new(vec!["split".into(), "mAP".into()]);
/// t.add_row(vec!["07".into(), "62.68".into()]);
/// let s = t.to_string();
/// assert!(s.contains("07"));
/// assert!(s.contains("mAP"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The header row.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as CSV (quoting not needed for our numeric content).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with two decimals (the paper's table precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a "measured (paper X)" cell for side-by-side comparison.
pub fn with_paper(measured: f64, paper: f64) -> String {
    format!("{measured:.2} ({paper:.2})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "long header".into()]);
        t.add_row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len(), "aligned widths");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(with_paper(62.1, 62.68), "62.10 (62.68)");
    }
}
