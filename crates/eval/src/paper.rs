//! The paper's published numbers, embedded for side-by-side reporting.
//!
//! Every experiment prints `measured (paper)` so EXPERIMENTS.md can record
//! the comparison mechanically. Values are transcribed from the ICDCS 2023
//! paper; where the camera-ready's table captions are inconsistent (the
//! small-model-2 vs small-model-3 mAP columns), we note it in EXPERIMENTS.md.

/// One row of a Tables III/V/VII/IX-style mAP table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapRow {
    /// Split label ("07", "07+12", …).
    pub split: &'static str,
    /// Big model mAP (%).
    pub big: f64,
    /// Small model mAP (%).
    pub small: f64,
    /// End-to-end mAP (%).
    pub e2e: f64,
    /// Upload ratio (%).
    pub upload: f64,
}

/// One row of a Tables IV/VI/VIII/X-style detected-objects table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetRow {
    /// Split label.
    pub split: &'static str,
    /// Objects detected by the big model.
    pub big: u64,
    /// Objects detected by the small model.
    pub small: u64,
    /// Objects detected end-to-end.
    pub e2e: u64,
    /// End-to-end / big model, %.
    pub e2e_vs_big: f64,
}

/// Table I — discriminator quality (train = ground-truth features).
pub mod table1 {
    /// accuracy, f1, precision, recall on the training set.
    pub const TRAIN: (f64, f64, f64, f64) = (85.35, 0.8665, 77.51, 98.24);
    /// accuracy, f1, precision, recall on the test set.
    pub const TEST: (f64, f64, f64, f64) = (78.35, 0.7732, 78.38, 76.29);
}

/// Table II — model size / pruned / FLOPs.
pub mod table2 {
    /// (name, size MB, pruned %, GFLOPs); pruned is vs SSD.
    pub const ROWS: [(&str, f64, f64, f64); 4] = [
        ("Small model 1", 18.50, 81.55, 5.60),
        ("Small model 2", 11.55, 88.48, 5.31),
        ("Small model 3", 6.50, 93.52, 1.31),
        ("SSD", 100.28, 0.0, 61.19),
    ];
}

/// Tables III/IV — small model 1 (VGG-Lite).
pub mod small1 {
    use super::{DetRow, MapRow};
    /// Table III.
    pub const MAP: [MapRow; 4] = [
        MapRow {
            split: "07",
            big: 70.76,
            small: 41.28,
            e2e: 62.68,
            upload: 51.47,
        },
        MapRow {
            split: "07+12",
            big: 77.41,
            small: 51.34,
            e2e: 71.61,
            upload: 51.23,
        },
        MapRow {
            split: "07++12",
            big: 72.31,
            small: 49.02,
            e2e: 66.42,
            upload: 50.76,
        },
        MapRow {
            split: "COCO",
            big: 42.18,
            small: 27.78,
            e2e: 38.76,
            upload: 52.09,
        },
    ];
    /// Table IV.
    pub const DETS: [DetRow; 4] = [
        DetRow {
            split: "07",
            big: 9055,
            small: 4759,
            e2e: 8325,
            e2e_vs_big: 93.00,
        },
        DetRow {
            split: "07+12",
            big: 9628,
            small: 5511,
            e2e: 9100,
            e2e_vs_big: 94.51,
        },
        DetRow {
            split: "07++12",
            big: 8434,
            small: 5202,
            e2e: 7852,
            e2e_vs_big: 95.07,
        },
        DetRow {
            split: "COCO",
            big: 7996,
            small: 4353,
            e2e: 7424,
            e2e_vs_big: 92.84,
        },
    ];
}

/// Tables V/VI — small model 2 (MobileNetV1).
pub mod small2 {
    use super::{DetRow, MapRow};
    /// Table V (as printed; see EXPERIMENTS.md on the V/VII caption swap).
    pub const MAP: [MapRow; 4] = [
        MapRow {
            split: "07",
            big: 70.76,
            small: 49.62,
            e2e: 64.00,
            upload: 52.16,
        },
        MapRow {
            split: "07+12",
            big: 77.41,
            small: 56.24,
            e2e: 71.38,
            upload: 51.97,
        },
        MapRow {
            split: "07++12",
            big: 72.31,
            small: 56.01,
            e2e: 67.80,
            upload: 51.69,
        },
        MapRow {
            split: "COCO",
            big: 42.18,
            small: 32.66,
            e2e: 41.46,
            upload: 50.65,
        },
    ];
    /// Table VI.
    pub const DETS: [DetRow; 4] = [
        DetRow {
            split: "07",
            big: 9055,
            small: 6264,
            e2e: 8810,
            e2e_vs_big: 97.29,
        },
        DetRow {
            split: "07+12",
            big: 9628,
            small: 6486,
            e2e: 9320,
            e2e_vs_big: 96.80,
        },
        DetRow {
            split: "07++12",
            big: 8434,
            small: 6393,
            e2e: 8323,
            e2e_vs_big: 98.68,
        },
        DetRow {
            split: "COCO",
            big: 7996,
            small: 6257,
            e2e: 7884,
            e2e_vs_big: 98.60,
        },
    ];
}

/// Tables VII/VIII — small model 3 (MobileNetV2).
pub mod small3 {
    use super::{DetRow, MapRow};
    /// Table VII.
    pub const MAP: [MapRow; 4] = [
        MapRow {
            split: "07",
            big: 70.76,
            small: 42.00,
            e2e: 64.29,
            upload: 51.99,
        },
        MapRow {
            split: "07+12",
            big: 77.41,
            small: 48.47,
            e2e: 72.24,
            upload: 51.85,
        },
        MapRow {
            split: "07++12",
            big: 72.31,
            small: 44.84,
            e2e: 66.42,
            upload: 51.99,
        },
        MapRow {
            split: "COCO",
            big: 42.18,
            small: 26.85,
            e2e: 38.50,
            upload: 48.96,
        },
    ];
    /// Table VIII.
    pub const DETS: [DetRow; 4] = [
        DetRow {
            split: "07",
            big: 9055,
            small: 4889,
            e2e: 8647,
            e2e_vs_big: 95.49,
        },
        DetRow {
            split: "07+12",
            big: 9628,
            small: 5242,
            e2e: 9079,
            e2e_vs_big: 94.29,
        },
        DetRow {
            split: "07++12",
            big: 8434,
            small: 4645,
            e2e: 8101,
            e2e_vs_big: 96.05,
        },
        DetRow {
            split: "COCO",
            big: 7996,
            small: 6388,
            e2e: 7917,
            e2e_vs_big: 99.01,
        },
    ];
}

/// Tables IX/X — YOLOv4 experiments.
pub mod yolo {
    use super::{DetRow, MapRow};
    /// Table IX (paper prints small before big for this table).
    pub const MAP: [MapRow; 2] = [
        MapRow {
            split: "07",
            big: 83.48,
            small: 73.64,
            e2e: 79.52,
            upload: 20.90,
        },
        MapRow {
            split: "07+12",
            big: 90.02,
            small: 79.72,
            e2e: 85.78,
            upload: 21.32,
        },
    ];
    /// Table X.
    pub const DETS: [DetRow; 2] = [
        DetRow {
            split: "07",
            big: 11098,
            small: 10509,
            e2e: 10985,
            e2e_vs_big: 98.98,
        },
        DetRow {
            split: "07+12",
            big: 11574,
            small: 10478,
            e2e: 11360,
            e2e_vs_big: 98.15,
        },
    ];
}

/// Table XI — HELMET on the real Jetson-Nano + server testbed.
pub mod table11 {
    /// (mAP %, detected objects, total inference time s, upload %).
    pub const EDGE_ONLY: (f64, u64, f64, f64) = (75.04, 940, 47.13, 0.0);
    /// Cloud-only row.
    pub const CLOUD_ONLY: (f64, u64, f64, f64) = (92.40, 1135, 264.76, 100.0);
    /// The small-big system row.
    pub const OURS: (f64, u64, f64, f64) = (86.07, 1119, 179.79, 51.19);
}

/// Tables XII–XVII — baseline comparisons (small model 1 + SSD).
pub mod baselines {
    /// Table XII: end-to-end mAP, random vs ours, per split.
    pub const RANDOM_MAP: [(&str, f64, f64); 4] = [
        ("07", 56.64, 62.68),
        ("07+12", 64.06, 71.61),
        ("07++12", 60.87, 66.42),
        ("COCO", 34.82, 38.76),
    ];
    /// Table XIII: detected objects as % of big, ours vs random.
    pub const RANDOM_DETS: [(&str, f64, f64, f64); 4] = [
        ("07", 93.00, 74.83, 51.47),
        ("07+12", 94.51, 77.07, 51.23),
        ("07++12", 95.07, 78.69, 50.76),
        ("COCO", 92.84, 75.06, 52.09),
    ];
    /// Table XIV: end-to-end mAP, blurred-upload vs ours.
    pub const BLUR_MAP: [(&str, f64, f64); 4] = [
        ("07", 57.30, 62.68),
        ("07+12", 65.22, 71.61),
        ("07++12", 60.05, 66.42),
        ("COCO", 35.26, 38.76),
    ];
    /// Table XV: detected objects as % of big, ours vs blurred.
    pub const BLUR_DETS: [(&str, f64, f64, f64); 4] = [
        ("07", 93.00, 73.13, 50.84),
        ("07+12", 94.51, 75.90, 50.84),
        ("07++12", 95.07, 78.33, 50.42),
        ("COCO", 92.84, 70.14, 50.48),
    ];
    /// Table XVI: end-to-end mAP, top-1-confidence vs ours.
    pub const TOP1_MAP: [(&str, f64, f64); 4] = [
        ("07", 57.30, 62.68),
        ("07+12", 65.22, 71.61),
        ("07++12", 60.05, 66.42),
        ("COCO", 35.26, 38.76),
    ];
    /// Table XVII: detected objects as % of big, ours vs top-1 confidence.
    pub const TOP1_DETS: [(&str, f64, f64, f64); 4] = [
        ("07", 93.00, 73.13, 50.84),
        ("07+12", 94.51, 75.90, 50.84),
        ("07++12", 95.07, 78.33, 50.42),
        ("COCO", 92.84, 70.14, 50.48),
    ];
}

/// The paper's published optimal thresholds (Sec. V-D, Fig. 7).
pub mod thresholds {
    /// Object-count threshold.
    pub const COUNT: usize = 2;
    /// Minimum-area-ratio threshold.
    pub const AREA: f64 = 0.31;
    /// Confidence-threshold band reported for noise filtering.
    pub const CONF_BAND: (f64, f64) = (0.15, 0.35);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_bands_consistent() {
        // The abstract's 94.01-97.84 % detected-objects band matches the
        // per-table averages.
        let avg = |rows: &[DetRow]| -> f64 {
            rows.iter().map(|r| r.e2e_vs_big).sum::<f64>() / rows.len() as f64
        };
        assert!((avg(&small1::DETS) - 94.01).abs() < 0.51);
        assert!((avg(&yolo::DETS) - 98.57).abs() < 0.1);
    }

    #[test]
    fn upload_ratios_near_half_for_ssd() {
        for r in small1::MAP.iter().chain(&small2::MAP).chain(&small3::MAP) {
            assert!((48.0..=53.0).contains(&r.upload), "{}", r.split);
        }
        for r in yolo::MAP.iter() {
            assert!((20.0..=22.0).contains(&r.upload));
        }
    }

    #[test]
    fn e2e_always_between_small_and_big() {
        for r in small1::MAP
            .iter()
            .chain(&small2::MAP)
            .chain(&small3::MAP)
            .chain(&yolo::MAP)
        {
            assert!(r.small < r.e2e && r.e2e < r.big, "{}", r.split);
        }
    }
}
