//! Reproductions of the paper's Figures 4, 7, 8 and 9 (as data series).

use crate::pairs::{pair_run, ExpConfig};
use crate::table::{f2, Table};
use crate::Report;
use datagen::SplitId;
use modelzoo::ModelKind;
use smallbig_core::{BinaryStats, DifficultCaseDiscriminator, Policy, Thresholds};

/// Figure 4: distribution of easy/difficult cases over the two semantic
/// features (object count × minimum area ratio), as a 2-D difficulty grid.
pub fn fig4(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Voc0712,
        cfg,
    );
    // Bin the labelled training examples like the scatter plot.
    let count_bins = [1usize, 2, 3, 4, 6, 9, 100];
    let area_bins = [0.0f64, 0.02, 0.05, 0.1, 0.2, 0.31, 0.5, 1.01];
    let mut headers = vec!["objects \\ min-area".to_string()];
    for w in area_bins.windows(2) {
        headers.push(format!("[{:.2},{:.2})", w[0], w[1]));
    }
    let mut t = Table::new(headers);
    let mut prev_count = 0usize;
    for &cmax in &count_bins {
        let mut row = vec![if cmax == 100 {
            format!("{}+", prev_count + 1)
        } else {
            format!("{}", cmax)
        }];
        for w in area_bins.windows(2) {
            let in_bin = run.train_examples.iter().filter(|e| {
                let a = e.true_min_area.unwrap_or(1.0);
                e.true_count > prev_count && e.true_count <= cmax && a >= w[0] && a < w[1]
            });
            let (mut difficult, mut total) = (0usize, 0usize);
            for e in in_bin {
                total += 1;
                if e.label.is_difficult() {
                    difficult += 1;
                }
            }
            row.push(if total == 0 {
                "-".to_string()
            } else {
                format!("{:.0}% ({total})", difficult as f64 / total as f64 * 100.0)
            });
        }
        t.add_row(row);
        prev_count = cmax;
    }
    Report::new(
        "fig4",
        "Figure 4: difficult-case rate over (object count, min object area ratio)",
        t,
    )
    .with_note("difficult cases concentrate at many objects / small minimum areas (top-left)")
    .with_note("each cell: % difficult (images in bin); VOC07+12 train, small model 1")
}

/// Figure 7: discriminator metrics when fixing the count threshold at 2 and
/// sweeping the minimum-area threshold (ground-truth features, train set).
pub fn fig7(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Voc0712,
        cfg,
    );
    let mut t = Table::new(vec![
        "area threshold".into(),
        "accuracy(%)".into(),
        "precision(%)".into(),
        "recall(%)".into(),
        "hm".into(),
    ]);
    let mut best: Option<(f64, f64)> = None;
    for step in 1..=19 {
        let area = step as f64 * 0.05;
        let disc = DifficultCaseDiscriminator::new(Thresholds {
            conf: 0.2,
            count: 2,
            area,
        });
        let stats = BinaryStats::from_pairs(run.train_examples.iter().map(|e| {
            (
                disc.classify_true_features(e.true_count, e.true_min_area),
                e.label,
            )
        }));
        if best.map(|(_, acc)| stats.accuracy > acc).unwrap_or(true) {
            best = Some((area, stats.accuracy));
        }
        t.add_row(vec![
            f2(area),
            f2(stats.accuracy * 100.0),
            f2(stats.precision * 100.0),
            f2(stats.recall * 100.0),
            format!("{:.4}", stats.f1),
        ]);
    }
    let (best_area, best_acc) = best.expect("non-empty sweep");
    Report::new(
        "fig7",
        "Figure 7: discriminator performance sweeping the min-area threshold (count = 2)",
        t,
    )
    .with_note(format!(
        "accuracy peaks at area threshold {best_area:.2} with {:.2}% (paper: 0.31 at 85.35%)",
        best_acc * 100.0
    ))
}

fn upload_sweep(cfg: &ExpConfig, detected: bool) -> Table {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Voc0712,
        cfg,
    );
    let t_conf = run.calibration.thresholds.conf;
    let mut t = Table::new(vec![
        "upload ratio(%)".into(),
        if detected {
            "detected objects".into()
        } else {
            "end-to-end mAP(%)".into()
        },
        if detected {
            "% of cloud-only".into()
        } else {
            "% of cloud-only mAP".into()
        },
    ]);
    for step in 0..=10 {
        let q = step as f64 / 10.0;
        let out = run.evaluate_policy(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            &Policy::DifficultyQuantile {
                upload_fraction: q,
                t_conf,
            },
        );
        if detected {
            t.add_row(vec![
                f2(q * 100.0),
                format!("{}", out.e2e_detected),
                f2(out.e2e_detected_vs_big_pct()),
            ]);
        } else {
            t.add_row(vec![
                f2(q * 100.0),
                f2(out.e2e_map_pct),
                f2(out.e2e_map_vs_big_pct()),
            ]);
        }
    }
    t
}

/// Figure 8: end-to-end mAP under different upload ratios.
pub fn fig8(cfg: &ExpConfig) -> Report {
    Report::new(
        "fig8",
        "Figure 8: end-to-end mAP under different upload ratios (small model 1, 07+12)",
        upload_sweep(cfg, false),
    )
    .with_note("difficulty-ranked uploading; the curve's knee sits near 50% as in the paper")
}

/// Figure 9: detected objects under different upload ratios.
pub fn fig9(cfg: &ExpConfig) -> Report {
    Report::new(
        "fig9",
        "Figure 9: detected objects under different upload ratios (small model 1, 07+12)",
        upload_sweep(cfg, true),
    )
    .with_note("by 50% upload the system exceeds 94% of the cloud-only detections")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_grid_has_all_count_rows() {
        let r = fig4(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 7);
    }

    #[test]
    fn fig7_sweep_has_19_points() {
        let r = fig7(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 19);
        assert!(r.notes[0].contains("peaks"));
    }

    #[test]
    fn fig8_fig9_monotone_in_upload() {
        let cfg = ExpConfig::quick();
        let r8 = fig8(&cfg);
        assert_eq!(r8.table.num_rows(), 11);
        // mAP at 100% upload >= mAP at 0% upload
        let first: f64 = r8.table.rows()[0][1].parse().unwrap();
        let last: f64 = r8.table.rows()[10][1].parse().unwrap();
        assert!(last >= first);
        let r9 = fig9(&cfg);
        let first: u64 = r9.table.rows()[0][1].parse().unwrap();
        let last: u64 = r9.table.rows()[10][1].parse().unwrap();
        assert!(last >= first);
    }
}
