//! Reproductions of the paper's Tables I–XVII.

use crate::pairs::{pair_run, ExpConfig};
use crate::paper;
use crate::table::{f2, with_paper, Table};
use crate::Report;
use datagen::SplitId;
use modelzoo::ModelKind;
use smallbig_core::{run_system, Policy, RuntimeConfig, RuntimeMode};

fn map_table(
    id: &str,
    title: &str,
    small_kind: ModelKind,
    big_kind: ModelKind,
    splits: &[SplitId],
    paper_rows: &[paper::MapRow],
    cfg: &ExpConfig,
) -> Report {
    let mut t = Table::new(vec![
        "".into(),
        "Big model mAP(%)".into(),
        "Small model mAP(%)".into(),
        "End-to-end mAP(%)".into(),
        "Upload ratio(%)".into(),
    ]);
    let mut upload_sum = 0.0;
    for (split, p) in splits.iter().zip(paper_rows) {
        let run = pair_run(small_kind, big_kind, *split, cfg);
        let o = &run.ours;
        upload_sum += o.upload_ratio * 100.0;
        t.add_row(vec![
            split.label().into(),
            with_paper(o.big_map_pct, p.big),
            with_paper(o.small_map_pct, p.small),
            with_paper(o.e2e_map_pct, p.e2e),
            with_paper(o.upload_ratio * 100.0, p.upload),
        ]);
    }
    let paper_avg = paper_rows.iter().map(|r| r.upload).sum::<f64>() / paper_rows.len() as f64;
    t.add_row(vec![
        "Average".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        with_paper(upload_sum / splits.len() as f64, paper_avg),
    ]);
    Report::new(id, title, t).with_note("cells are measured (paper)")
}

fn det_table(
    id: &str,
    title: &str,
    small_kind: ModelKind,
    big_kind: ModelKind,
    splits: &[SplitId],
    paper_rows: &[paper::DetRow],
    cfg: &ExpConfig,
) -> Report {
    let mut t = Table::new(vec![
        "".into(),
        "Big model".into(),
        "Small model".into(),
        "End-to-end".into(),
        "End-to-end/Big model(%)".into(),
    ]);
    let mut ratio_sum = 0.0;
    for (split, p) in splits.iter().zip(paper_rows) {
        let run = pair_run(small_kind, big_kind, *split, cfg);
        let o = &run.ours;
        ratio_sum += o.e2e_detected_vs_big_pct();
        t.add_row(vec![
            split.label().into(),
            format!("{} ({})", o.big_detected, p.big),
            format!("{} ({})", o.small_detected, p.small),
            format!("{} ({})", o.e2e_detected, p.e2e),
            with_paper(o.e2e_detected_vs_big_pct(), p.e2e_vs_big),
        ]);
    }
    let paper_avg = paper_rows.iter().map(|r| r.e2e_vs_big).sum::<f64>() / paper_rows.len() as f64;
    t.add_row(vec![
        "Average".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        with_paper(ratio_sum / splits.len() as f64, paper_avg),
    ]);
    Report::new(id, title, t)
        .with_note("cells are measured (paper); absolute counts scale with --scale")
}

/// Table I: discriminator accuracy/F1/precision/recall, train vs test.
pub fn table1(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Voc0712,
        cfg,
    );
    let mut t = Table::new(vec![
        "".into(),
        "Accuracy(%)".into(),
        "F1".into(),
        "Precision(%)".into(),
        "Recall(%)".into(),
    ]);
    let (pa, pf, pp, pr) = paper::table1::TRAIN;
    let s = &run.calibration.train_stats;
    t.add_row(vec![
        "Ground Truth".into(),
        with_paper(s.accuracy * 100.0, pa),
        format!("{:.4} ({:.4})", s.f1, pf),
        with_paper(s.precision * 100.0, pp),
        with_paper(s.recall * 100.0, pr),
    ]);
    let (pa, pf, pp, pr) = paper::table1::TEST;
    let s = &run.test_stats;
    t.add_row(vec![
        "Predicted".into(),
        with_paper(s.accuracy * 100.0, pa),
        format!("{:.4} ({:.4})", s.f1, pf),
        with_paper(s.precision * 100.0, pp),
        with_paper(s.recall * 100.0, pr),
    ]);
    let th = run.calibration.thresholds;
    Report::new(
        "table1",
        "Table I: difficult-case discriminator on train (ground-truth features) and test",
        t,
    )
    .with_note(format!(
        "calibrated thresholds: conf {:.2} (paper band {:.2}-{:.2}), count {} (paper {}), area {:.2} (paper {:.2})",
        th.conf,
        paper::thresholds::CONF_BAND.0,
        paper::thresholds::CONF_BAND.1,
        th.count,
        paper::thresholds::COUNT,
        th.area,
        paper::thresholds::AREA,
    ))
}

/// Table II: model size, pruned ratio, FLOPs of the small models + SSD.
pub fn table2(_cfg: &ExpConfig) -> Report {
    let big = modelzoo::ssd300_vgg16(20);
    let nets = [
        ("Small model 1", modelzoo::vgg_lite_ssd(20)),
        ("Small model 2", modelzoo::mobilenet_v1_ssd_paper(20)),
        ("Small model 3", modelzoo::mobilenet_v2_ssd_paper(20)),
        ("SSD", modelzoo::ssd300_vgg16(20)),
    ];
    let mut t = Table::new(vec![
        "".into(),
        "Model size(MB)".into(),
        "Pruned(%)".into(),
        "FLOPs(Billion)".into(),
    ]);
    for ((name, net), (pname, psize, ppruned, pflops)) in nets.iter().zip(paper::table2::ROWS) {
        assert_eq!(*name, pname);
        let pruned = if *name == "SSD" {
            "-".to_string()
        } else {
            with_paper(net.pruned_percent_vs(&big), ppruned)
        };
        t.add_row(vec![
            (*name).into(),
            with_paper(net.size_mb(), psize),
            pruned,
            with_paper(net.gflops(), pflops),
        ]);
    }
    Report::new(
        "table2",
        "Table II: model size and computing operations of the small models",
        t,
    )
    .with_note("computed from the layer-level architecture descriptions in `modelzoo`")
}

/// Table III: mAP with small model 1.
pub fn table3(cfg: &ExpConfig) -> Report {
    map_table(
        "table3",
        "Table III: mAP when using small model 1 (VGG-Lite)",
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        &SplitId::PAPER_MAIN,
        &paper::small1::MAP,
        cfg,
    )
}

/// Table IV: detected objects with small model 1.
pub fn table4(cfg: &ExpConfig) -> Report {
    det_table(
        "table4",
        "Table IV: number of detected objects when using small model 1",
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        &SplitId::PAPER_MAIN,
        &paper::small1::DETS,
        cfg,
    )
}

/// Table V: mAP with small model 2 (MobileNetV1).
pub fn table5(cfg: &ExpConfig) -> Report {
    map_table(
        "table5",
        "Table V: mAP when using small model 2 (MobileNetV1)",
        ModelKind::MobileNetV1Ssd,
        ModelKind::SsdVgg16,
        &SplitId::PAPER_MAIN,
        &paper::small2::MAP,
        cfg,
    )
}

/// Table VI: detected objects with small model 2.
pub fn table6(cfg: &ExpConfig) -> Report {
    det_table(
        "table6",
        "Table VI: number of detected objects when using small model 2",
        ModelKind::MobileNetV1Ssd,
        ModelKind::SsdVgg16,
        &SplitId::PAPER_MAIN,
        &paper::small2::DETS,
        cfg,
    )
}

/// Table VII: mAP with small model 3 (MobileNetV2).
pub fn table7(cfg: &ExpConfig) -> Report {
    map_table(
        "table7",
        "Table VII: mAP when using small model 3 (MobileNetV2)",
        ModelKind::MobileNetV2Ssd,
        ModelKind::SsdVgg16,
        &SplitId::PAPER_MAIN,
        &paper::small3::MAP,
        cfg,
    )
}

/// Table VIII: detected objects with small model 3.
pub fn table8(cfg: &ExpConfig) -> Report {
    det_table(
        "table8",
        "Table VIII: number of detected objects when using small model 3",
        ModelKind::MobileNetV2Ssd,
        ModelKind::SsdVgg16,
        &SplitId::PAPER_MAIN,
        &paper::small3::DETS,
        cfg,
    )
}

const YOLO_SPLITS: [SplitId; 2] = [SplitId::Voc07, SplitId::Voc0712];

/// Table IX: mAP with the YOLOv4 pair.
pub fn table9(cfg: &ExpConfig) -> Report {
    map_table(
        "table9",
        "Table IX: mAP when using YOLOv4",
        ModelKind::YoloMobileNetV1,
        ModelKind::YoloV4,
        &YOLO_SPLITS,
        &paper::yolo::MAP,
        cfg,
    )
}

/// Table X: detected objects with the YOLOv4 pair.
pub fn table10(cfg: &ExpConfig) -> Report {
    det_table(
        "table10",
        "Table X: number of detected objects when using YOLOv4",
        ModelKind::YoloMobileNetV1,
        ModelKind::YoloV4,
        &YOLO_SPLITS,
        &paper::yolo::DETS,
        cfg,
    )
}

/// Table XI: HELMET under real-world edge-cloud collaboration.
pub fn table11(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Helmet,
        cfg,
    );
    let (small, big) = run.detectors(ModelKind::VggLiteSsd, ModelKind::SsdVgg16);
    let disc = run.discriminator();
    let rt_cfg = RuntimeConfig {
        frame_size: (300, 300),
        ..Default::default()
    };
    let rows = [
        (
            "Edge-only",
            RuntimeMode::EdgeOnly,
            paper::table11::EDGE_ONLY,
        ),
        (
            "Cloud-only",
            RuntimeMode::CloudOnly,
            paper::table11::CLOUD_ONLY,
        ),
        ("Our method", RuntimeMode::SmallBig, paper::table11::OURS),
    ];
    let mut t = Table::new(vec![
        "".into(),
        "mAP(%)".into(),
        "Detected objects".into(),
        "Total inference time(s)".into(),
        "Upload ratio(%)".into(),
    ]);
    for (name, mode, (pmap, pdet, ptime, pupload)) in rows {
        let r = run_system(&run.split.test, &small, &big, &disc, mode, &rt_cfg);
        let upload = if mode == RuntimeMode::EdgeOnly {
            "-".to_string()
        } else {
            with_paper(r.upload_ratio * 100.0, pupload)
        };
        t.add_row(vec![
            name.into(),
            with_paper(r.map_pct, pmap),
            format!("{} ({})", r.detected, pdet),
            with_paper(r.total_time_s, ptime),
            upload,
        ]);
    }
    Report::new(
        "table11",
        "Table XI: HELMET under real-world edge-cloud collaboration (live runtime)",
        t,
    )
    .with_note("Jetson Nano + RTX3060 server over WLAN; virtual-time threaded runtime")
    .with_note("absolute times scale with --scale (paper ran the full test footage)")
}

fn baseline_map_table(
    id: &str,
    title: &str,
    policy_for: impl Fn(&crate::pairs::PairRun) -> Policy,
    paper_rows: &[(&str, f64, f64)],
    cfg: &ExpConfig,
) -> Report {
    let mut t = Table::new(vec![
        "".into(),
        "End-to-end mAP baseline(%)".into(),
        "End-to-end mAP our method(%)".into(),
    ]);
    for (split, p) in SplitId::PAPER_MAIN.iter().zip(paper_rows) {
        let run = pair_run(ModelKind::VggLiteSsd, ModelKind::SsdVgg16, *split, cfg);
        let policy = policy_for(&run);
        let base = run.evaluate_policy(ModelKind::VggLiteSsd, ModelKind::SsdVgg16, &policy);
        t.add_row(vec![
            split.label().into(),
            with_paper(base.e2e_map_pct, p.1),
            with_paper(run.ours.e2e_map_pct, p.2),
        ]);
    }
    Report::new(id, title, t)
}

fn baseline_det_table(
    id: &str,
    title: &str,
    policy_for: impl Fn(&crate::pairs::PairRun) -> Policy,
    paper_rows: &[(&str, f64, f64, f64)],
    cfg: &ExpConfig,
) -> Report {
    let mut t = Table::new(vec![
        "".into(),
        "E2E/Big(%) our method".into(),
        "E2E/Big(%) baseline".into(),
        "Upload ratio(%)".into(),
    ]);
    for (split, p) in SplitId::PAPER_MAIN.iter().zip(paper_rows) {
        let run = pair_run(ModelKind::VggLiteSsd, ModelKind::SsdVgg16, *split, cfg);
        let policy = policy_for(&run);
        let base = run.evaluate_policy(ModelKind::VggLiteSsd, ModelKind::SsdVgg16, &policy);
        t.add_row(vec![
            split.label().into(),
            with_paper(run.ours.e2e_detected_vs_big_pct(), p.1),
            with_paper(base.e2e_detected_vs_big_pct(), p.2),
            with_paper(base.upload_ratio * 100.0, p.3),
        ]);
    }
    Report::new(id, title, t)
}

/// Table XII: random-upload baseline, end-to-end mAP.
pub fn table12(cfg: &ExpConfig) -> Report {
    baseline_map_table(
        "table12",
        "Table XII: mAP of the method randomly uploading images to the cloud",
        |run| Policy::Random {
            upload_fraction: run.ours.upload_ratio,
            seed: 0xabc,
        },
        &paper::baselines::RANDOM_MAP,
        cfg,
    )
    .with_note("random baseline matched to our method's upload ratio, as in the paper")
}

/// Table XIII: random-upload baseline, detected objects.
pub fn table13(cfg: &ExpConfig) -> Report {
    baseline_det_table(
        "table13",
        "Table XIII: detected objects of the method randomly uploading images",
        |run| Policy::Random {
            upload_fraction: run.ours.upload_ratio,
            seed: 0xabc,
        },
        &paper::baselines::RANDOM_DETS,
        cfg,
    )
}

/// Table XIV: blurred-image (Brenner gradient) baseline, end-to-end mAP.
pub fn table14(cfg: &ExpConfig) -> Report {
    let rs = cfg.render_size;
    baseline_map_table(
        "table14",
        "Table XIV: mAP of the method uploading blurred images to the cloud",
        move |run| Policy::BlurQuantile {
            upload_fraction: run.ours.upload_ratio,
            render_size: rs,
        },
        &paper::baselines::BLUR_MAP,
        cfg,
    )
    .with_note("ambiguity ranked by the Brenner gradient (Eq. 2) over rendered frames")
}

/// Table XV: blurred-image baseline, detected objects.
pub fn table15(cfg: &ExpConfig) -> Report {
    let rs = cfg.render_size;
    baseline_det_table(
        "table15",
        "Table XV: detected objects of the method uploading blurred images",
        move |run| Policy::BlurQuantile {
            upload_fraction: run.ours.upload_ratio,
            render_size: rs,
        },
        &paper::baselines::BLUR_DETS,
        cfg,
    )
}

/// Table XVI: top-1-confidence baseline, end-to-end mAP.
pub fn table16(cfg: &ExpConfig) -> Report {
    baseline_map_table(
        "table16",
        "Table XVI: mAP of the method uploading images by top-1 confidence score",
        |run| Policy::Top1Quantile {
            upload_fraction: run.ours.upload_ratio,
        },
        &paper::baselines::TOP1_MAP,
        cfg,
    )
    .with_note("per-class top-1 scores averaged over the taxonomy, lowest uploaded first")
}

/// Table XVII: top-1-confidence baseline, detected objects.
pub fn table17(cfg: &ExpConfig) -> Report {
    baseline_det_table(
        "table17",
        "Table XVII: detected objects of the method uploading by top-1 confidence",
        |run| Policy::Top1Quantile {
            upload_fraction: run.ours.upload_ratio,
        },
        &paper::baselines::TOP1_DETS,
        cfg,
    )
}

/// Convenience: `f2` re-export check (keeps the helper used).
#[allow(dead_code)]
fn _use_f2() -> String {
    f2(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_scale_free() {
        let r = table2(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 4);
        assert!(r.to_string().contains("100.28"));
    }

    #[test]
    fn table1_quick_runs() {
        let r = table1(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 2);
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn table3_and_4_share_runs() {
        let cfg = ExpConfig::quick();
        let a = table3(&cfg);
        let b = table4(&cfg);
        assert_eq!(a.table.num_rows(), 5); // 4 splits + average
        assert_eq!(b.table.num_rows(), 5);
    }

    #[test]
    fn table11_has_three_modes() {
        let r = table11(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 3);
        let s = r.to_string();
        assert!(s.contains("Edge-only"));
        assert!(s.contains("Cloud-only"));
        assert!(s.contains("Our method"));
    }

    #[test]
    fn baseline_tables_quick() {
        let cfg = ExpConfig::quick();
        for r in [table12(&cfg), table13(&cfg), table16(&cfg), table17(&cfg)] {
            assert_eq!(r.table.num_rows(), 4);
        }
    }
}
