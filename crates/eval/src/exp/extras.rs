//! Beyond the numbered tables: the intro's partition motivation and the
//! ablations DESIGN.md calls out.

use crate::pairs::{pair_run, ExpConfig};
use crate::table::{f2, Table};
use crate::Report;
use datagen::SplitId;
use imaging::{encoded_size_bytes, render};
use modelzoo::{Detector, ModelKind, PartitionAnalysis};
use smallbig_core::{
    run_system, AutoscaleConfig, CloudConfig, CloudServer, DifficultCaseDiscriminator,
    DiscriminatorConfig, Policy, RuntimeConfig, RuntimeMode, SchedulerConfig, SessionConfig,
};
use std::sync::Arc;

/// The intro's motivation: partitioned execution of an object detector ships
/// more bytes than the image itself at almost every split point.
pub fn motivation(cfg: &ExpConfig) -> Report {
    let net = modelzoo::ssd300_vgg16(20);
    let analysis = PartitionAnalysis::of(&net);
    // A representative encoded frame.
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Voc07,
        cfg,
    );
    let scene = &run.split.test.scenes()[0];
    let image_bytes = encoded_size_bytes(&render(&scene.render_spec(300, 300))) as u64;

    let mut t = Table::new(vec![
        "split after layer".into(),
        "activation bytes".into(),
        "vs encoded image".into(),
        "device FLOPs share(%)".into(),
    ]);
    let total: u64 = analysis
        .splits
        .last()
        .map(|s| s.device_flops + s.cloud_flops)
        .unwrap_or(1);
    for sp in analysis.splits.iter().step_by(3) {
        t.add_row(vec![
            sp.layer_name.clone(),
            format!("{}", sp.transfer_bytes),
            format!("{:.1}x", sp.transfer_bytes as f64 / image_bytes as f64),
            f2(sp.device_flops as f64 / total as f64 * 100.0),
        ]);
    }
    let worse = analysis.splits_larger_than_image(image_bytes);
    let best_cheap = analysis.min_transfer_within_budget(0.25);
    let mut report = Report::new(
        "motivation",
        "Model partition ships more bytes than the image (SSD300, Sec. II-C)",
        t,
    )
    .with_note(format!(
        "encoded 300x300 frame = {image_bytes} bytes; {worse}/{} split points transfer more",
        analysis.splits.len()
    ));
    if let Some(sp) = best_cheap {
        report = report.with_note(format!(
            "cheapest split within a 25% edge-FLOPs budget still ships {} bytes ({:.1}x the image) after {}",
            sp.transfer_bytes,
            sp.transfer_bytes as f64 / image_bytes as f64,
            sp.layer_name
        ));
    }
    report
}

/// Ablation: which parts of the discriminator matter (Sec. V-C's three steps).
pub fn ablation_features(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Voc0712,
        cfg,
    );
    let th = run.calibration.thresholds;
    let variants: [(&str, DiscriminatorConfig); 4] = [
        (
            "full (count + area + shortcut)",
            DiscriminatorConfig::default(),
        ),
        (
            "count only",
            DiscriminatorConfig {
                use_area: false,
                ..Default::default()
            },
        ),
        (
            "area only",
            DiscriminatorConfig {
                use_count: false,
                ..Default::default()
            },
        ),
        (
            "no all-detected shortcut",
            DiscriminatorConfig {
                use_all_detected_shortcut: false,
                ..Default::default()
            },
        ),
    ];
    let mut t = Table::new(vec![
        "discriminator variant".into(),
        "e2e mAP(%)".into(),
        "e2e dets/big(%)".into(),
        "upload(%)".into(),
    ]);
    for (name, config) in variants {
        let disc = DifficultCaseDiscriminator::with_config(th, config);
        let out = run.evaluate_policy(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            &Policy::DifficultCase(disc),
        );
        t.add_row(vec![
            name.into(),
            f2(out.e2e_map_pct),
            f2(out.e2e_detected_vs_big_pct()),
            f2(out.upload_ratio * 100.0),
        ]);
    }
    let oracle = run.evaluate_policy(ModelKind::VggLiteSsd, ModelKind::SsdVgg16, &Policy::Oracle);
    t.add_row(vec![
        "oracle (true labels)".into(),
        f2(oracle.e2e_map_pct),
        f2(oracle.e2e_detected_vs_big_pct()),
        f2(oracle.upload_ratio * 100.0),
    ]);
    Report::new(
        "ablation-features",
        "Ablation: discriminator steps (VOC07+12, small model 1)",
        t,
    )
    .with_note("'no shortcut' uploads far more at little accuracy gain; both features contribute")
}

/// Ablation: sensitivity to the noise-filter confidence threshold.
pub fn ablation_tconf(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Voc0712,
        cfg,
    );
    let th = run.calibration.thresholds;
    let mut t = Table::new(vec![
        "t_conf".into(),
        "e2e mAP(%)".into(),
        "upload(%)".into(),
    ]);
    for step in 1..=9 {
        let conf = step as f64 * 0.05;
        let disc = DifficultCaseDiscriminator::new(smallbig_core::Thresholds { conf, ..th });
        let out = run.evaluate_policy(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            &Policy::DifficultCase(disc),
        );
        t.add_row(vec![
            f2(conf),
            f2(out.e2e_map_pct),
            f2(out.upload_ratio * 100.0),
        ]);
    }
    Report::new(
        "ablation-tconf",
        "Ablation: sensitivity to the confidence (noise-filter) threshold",
        t,
    )
    .with_note(format!(
        "calibration picked t_conf = {:.2}; the paper reports the useful band as 0.15-0.35",
        th.conf
    ))
}

/// Ablation: Table XI under different network links.
pub fn ablation_links(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Helmet,
        cfg,
    );
    let (small, big) = run.detectors(ModelKind::VggLiteSsd, ModelKind::SsdVgg16);
    let disc = run.discriminator();
    let links = [
        ("WLAN (paper)", simnet::LinkModel::wlan()),
        ("fast Wi-Fi", simnet::LinkModel::fast_wifi()),
        ("cellular", simnet::LinkModel::cellular()),
    ];
    let mut t = Table::new(vec![
        "link".into(),
        "ours total(s)".into(),
        "cloud-only total(s)".into(),
        "ours saves(%)".into(),
    ]);
    for (name, link) in links {
        let rt = RuntimeConfig {
            link,
            frame_size: (300, 300),
            ..Default::default()
        };
        let ours = run_system(
            &run.split.test,
            &small,
            &big,
            &disc,
            RuntimeMode::SmallBig,
            &rt,
        );
        let cloud = run_system(
            &run.split.test,
            &small,
            &big,
            &disc,
            RuntimeMode::CloudOnly,
            &rt,
        );
        t.add_row(vec![
            name.into(),
            f2(ours.total_time_s),
            f2(cloud.total_time_s),
            f2((1.0 - ours.total_time_s / cloud.total_time_s) * 100.0),
        ]);
    }
    Report::new(
        "ablation-links",
        "Ablation: end-to-end time vs network link (HELMET runtime)",
        t,
    )
    .with_note("the slower the link, the more the difficult-case routing saves")
}

/// Extension: per-class AP breakdown on VOC07 — shows *where* the small
/// model loses to the big one (person/chair-like crowded classes) and how
/// the end-to-end system recovers it.
pub fn perclass(cfg: &ExpConfig) -> Report {
    use detcore::{ApProtocol, ClassId, MapEvaluator, Taxonomy};
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Voc07,
        cfg,
    );
    let (small, big) = run.detectors(ModelKind::VggLiteSsd, ModelKind::SsdVgg16);
    let disc = run.discriminator();
    let taxonomy = Taxonomy::voc20();

    let mut small_ev = MapEvaluator::new(20, ApProtocol::Voc07ElevenPoint);
    let mut big_ev = MapEvaluator::new(20, ApProtocol::Voc07ElevenPoint);
    let mut e2e_ev = MapEvaluator::new(20, ApProtocol::Voc07ElevenPoint);
    // Detections and ground truths are consumed per frame, so three reused
    // buffers carry the whole scan: `detect_into` for the models and
    // `ground_truths_into` for the annotations, all allocation-free when
    // warm.
    let mut s = detcore::ImageDetections::new();
    let mut b = detcore::ImageDetections::new();
    let mut gts = Vec::new();
    for scene in run.split.test.iter() {
        scene.ground_truths_into(&mut gts);
        modelzoo::Detector::detect_into(&small, scene, &mut s);
        modelzoo::Detector::detect_into(&big, scene, &mut b);
        let final_dets = if disc.classify(&s).is_difficult() {
            &b
        } else {
            &s
        };
        e2e_ev.add_image(final_dets, &gts);
        small_ev.add_image(&s, &gts);
        big_ev.add_image(&b, &gts);
    }
    let (sr, br, er) = (small_ev.evaluate(), big_ev.evaluate(), e2e_ev.evaluate());

    let mut t = Table::new(vec![
        "class".into(),
        "objects".into(),
        "small AP(%)".into(),
        "big AP(%)".into(),
        "e2e AP(%)".into(),
        "recovered(%)".into(),
    ]);
    for c in 0..20u16 {
        let id = ClassId(c);
        let (s, b, e) = (
            sr.per_class[c as usize].ap * 100.0,
            br.per_class[c as usize].ap * 100.0,
            er.per_class[c as usize].ap * 100.0,
        );
        let gap = b - s;
        let recovered = if gap.abs() < 1e-9 {
            100.0
        } else {
            (e - s) / gap * 100.0
        };
        t.add_row(vec![
            taxonomy.name(id).to_string(),
            format!("{}", sr.per_class[c as usize].num_gt),
            f2(s),
            f2(b),
            f2(e),
            f2(recovered.clamp(-100.0, 200.0)),
        ]);
    }
    Report::new(
        "perclass",
        "Extension: per-class AP on VOC07 (small model 1) — where uploads help",
        t,
    )
    .with_note("'recovered' = fraction of the small→big AP gap closed by routing difficult cases")
}

/// Extension (paper Sec. VII future work): automatic model compression —
/// given an edge budget, search the width multiplier automatically.
pub fn compress(_cfg: &ExpConfig) -> Report {
    use modelzoo::{compress_to_budget, CompressBase, EdgeBudget};
    let mut t = Table::new(vec![
        "base / budget".into(),
        "found width".into(),
        "size(MB)".into(),
        "GFLOPs".into(),
        "pruned vs SSD(%)".into(),
    ]);
    let big = modelzoo::ssd300_vgg16(20);
    for (base, label) in [
        (CompressBase::MobileNetV1, "MobileNetV1"),
        (CompressBase::MobileNetV2, "MobileNetV2"),
    ] {
        for budget_mb in [4.0, 8.0, 12.0, 20.0] {
            match compress_to_budget(base, 20, EdgeBudget::size_mb(budget_mb)) {
                Some(c) => t.add_row(vec![
                    format!("{label} @ {budget_mb:.0} MB"),
                    format!("{:.2}", c.alpha),
                    f2(c.network.size_mb()),
                    f2(c.network.gflops()),
                    f2(c.network.pruned_percent_vs(&big)),
                ]),
                None => t.add_row(vec![
                    format!("{label} @ {budget_mb:.0} MB"),
                    "infeasible".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    Report::new(
        "compress",
        "Extension: automatic small-model compression under an edge budget (Sec. VII)",
        t,
    )
    .with_note(
        "bisection over the MobileNet width multiplier; 12 MB recovers the paper's small model 2",
    )
}

/// Extension ablation: per-image latency deadlines with local fallback.
pub fn ablation_deadline(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Helmet,
        cfg,
    );
    let (small, big) = run.detectors(ModelKind::VggLiteSsd, ModelKind::SsdVgg16);
    let disc = run.discriminator();
    let mut t = Table::new(vec![
        "deadline".into(),
        "mAP(%)".into(),
        "detected".into(),
        "deadline misses".into(),
        "mean latency(ms)".into(),
    ]);
    for deadline in [None, Some(2.0), Some(1.0), Some(0.5), Some(0.2)] {
        let rt = RuntimeConfig {
            frame_size: (300, 300),
            deadline_s: deadline,
            ..Default::default()
        };
        let r = run_system(
            &run.split.test,
            &small,
            &big,
            &disc,
            RuntimeMode::SmallBig,
            &rt,
        );
        t.add_row(vec![
            deadline
                .map(|d| format!("{d:.1} s"))
                .unwrap_or_else(|| "none".into()),
            f2(r.map_pct),
            format!("{}", r.detected),
            format!("{}", r.deadline_misses),
            f2(r.latency.mean_s() * 1000.0),
        ]);
    }
    Report::new(
        "ablation-deadline",
        "Extension: latency deadlines with local fallback (HELMET runtime)",
        t,
    )
    .with_note("tight deadlines trade detection quality for bounded per-frame latency")
}

/// Extension: the discriminator vs the fixed baselines when the link
/// actually degrades — a step outage, Gilbert–Elliott bursty loss, and a
/// diurnal capacity ramp over the paper's WLAN. Fixed seeds and virtual
/// clocks make every cell deterministic; `link fallbacks` counts frames
/// the policy wanted in the cloud but the link could not deliver (the edge
/// answer was served instead).
pub fn degraded(cfg: &ExpConfig) -> Report {
    use simnet::LinkTrace;
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Helmet,
        cfg,
    );
    let (small, big) = run.detectors(ModelKind::VggLiteSsd, ModelKind::SsdVgg16);
    let disc = run.discriminator();
    // Windows sized to bite at reduced --scale runs (a few virtual seconds
    // of traffic) and still land inside full-scale ones.
    let traces: [(&str, LinkTrace); 3] = [
        ("outage 2–8s", LinkTrace::step_outage(2.0, 6.0)),
        ("bursty loss", LinkTrace::bursty(11, 600.0, 3.0, 1.5, 0.9)),
        ("diurnal ramp", LinkTrace::diurnal_ramp(8.0, 0.15, 8, 40)),
    ];
    let mut t = Table::new(vec![
        "trace / policy".into(),
        "mAP(%)".into(),
        "total(s)".into(),
        "upload(%)".into(),
        "link fallbacks".into(),
        "retransmit(s)".into(),
    ]);
    for (trace_name, trace) in traces {
        for (policy_name, mode) in [
            ("difficult-case", RuntimeMode::SmallBig),
            ("cloud-only", RuntimeMode::CloudOnly),
            ("edge-only", RuntimeMode::EdgeOnly),
        ] {
            let rt = RuntimeConfig {
                link_trace: Some(trace.clone()),
                frame_size: (300, 300),
                ..Default::default()
            };
            let r = run_system(&run.split.test, &small, &big, &disc, mode, &rt);
            t.add_row(vec![
                format!("{trace_name} / {policy_name}"),
                f2(r.map_pct),
                f2(r.total_time_s),
                f2(r.upload_ratio * 100.0),
                format!("{}", r.link_fallbacks),
                f2(r.latency.total.retransmit_s),
            ]);
        }
    }
    Report::new(
        "degraded",
        "Extension: offload policies under degraded networks (HELMET runtime, traced WLAN)",
        t,
    )
    .with_note("selective upload degrades gracefully: fewer frames depend on the broken link")
    .with_note("deterministic: piecewise traces over virtual time, seeded RNG streams")
}

/// Extension: the cloud scheduling control plane — FIFO vs deadline-aware
/// vs difficulty-priority batch formation under bursty traffic and the
/// degraded-network scenarios, plus an admission-control and a
/// deterministic-autoscaling row. Every cell is a fixed-seed streaming
/// session driven in bursts (eight frames in flight), so the cloud queue
/// actually fills and the scheduler's service order matters.
pub fn scheduling(cfg: &ExpConfig) -> Report {
    use simnet::LinkTrace;
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Helmet,
        cfg,
    );
    let (small, big) = run.detectors(ModelKind::VggLiteSsd, ModelKind::SsdVgg16);
    let disc = run.discriminator();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(big);

    let drive = |scheduler: SchedulerConfig,
                 queue_limit: Option<usize>,
                 autoscale: Option<AutoscaleConfig>,
                 workers: usize,
                 trace: Option<LinkTrace>| {
        let mut cloud = CloudServer::spawn(
            CloudConfig {
                max_batch: 4,
                workers,
                scheduler,
                queue_limit,
                autoscale,
                ..CloudConfig::default()
            },
            Arc::clone(&big),
        );
        let frame_size = (cfg.render_size.0.max(96), cfg.render_size.1.max(96));
        // A deadline-less cloud-only co-tenant keeps the cloud queue full:
        // its frames carry no deadline and no difficulty score, so FIFO
        // interleaves our frames behind them while the priority schedulers
        // can serve ours (deadlined, scored) first.
        let mut background = cloud.connect(
            SessionConfig {
                frame_size,
                seed: 0x7e57,
                ..SessionConfig::new(run.num_classes)
            },
            &small,
            Box::new(Policy::CloudOnly),
        );
        let mut session = cloud.connect(
            SessionConfig {
                frame_size,
                deadline_s: Some(1.0),
                link_trace: trace,
                ..SessionConfig::new(run.num_classes)
            },
            &small,
            Box::new(disc.clone()),
        );
        // Burst drive: per round, four unpolled background frames and four
        // of ours go up before the first poll, so batches really queue and
        // the scheduler has frames to order.
        for chunk in run.split.test.scenes().chunks(8) {
            let (bg, ours) = chunk.split_at(chunk.len() / 2);
            for s in bg {
                background.submit(s);
            }
            let tickets: Vec<_> = ours.iter().map(|s| session.submit(s)).collect();
            for t in tickets {
                let _ = session.poll(t);
            }
        }
        let report = session.drain();
        background.drain();
        drop((session, background));
        (report, cloud.shutdown())
    };

    let scenarios: [(&str, Option<LinkTrace>); 3] = [
        ("steady", None),
        ("outage 2–8s", Some(LinkTrace::step_outage(2.0, 6.0))),
        (
            "bursty loss",
            Some(LinkTrace::bursty(11, 600.0, 3.0, 1.5, 0.9)),
        ),
    ];
    let schedulers = [
        SchedulerConfig::Fifo,
        SchedulerConfig::DeadlineAware { lookahead: 2 },
        SchedulerConfig::DifficultyPriority { lookahead: 2 },
    ];

    let mut t = Table::new(vec![
        "scenario / scheduler".into(),
        "mAP(%)".into(),
        "upload(%)".into(),
        "deadline misses".into(),
        "fallbacks".into(),
        "mean latency(ms)".into(),
    ]);
    for (scenario_name, trace) in &scenarios {
        for sched in schedulers {
            let (r, _) = drive(sched, None, None, 1, trace.clone());
            t.add_row(vec![
                format!("{scenario_name} / {}", sched.name()),
                f2(r.map_pct),
                f2(r.upload_ratio * 100.0),
                format!("{}", r.deadline_misses),
                format!("{}", r.link_fallbacks + r.admission_fallbacks),
                f2(r.latency.mean_s() * 1000.0),
            ]);
        }
    }
    // Control-plane extras on the steady scenario: admission control and
    // the deterministic autoscaler.
    let (adm, adm_stats) = drive(SchedulerConfig::Fifo, Some(2), None, 1, None);
    t.add_row(vec![
        "steady / fifo + queue_limit 2".into(),
        f2(adm.map_pct),
        f2(adm.upload_ratio * 100.0),
        format!("{}", adm.deadline_misses),
        format!("{}", adm.link_fallbacks + adm.admission_fallbacks),
        f2(adm.latency.mean_s() * 1000.0),
    ]);
    let (auto, auto_stats) = drive(
        SchedulerConfig::Fifo,
        None,
        Some(AutoscaleConfig {
            frames_per_worker: 2,
            min_workers: 1,
        }),
        4,
        None,
    );
    t.add_row(vec![
        "steady / fifo + autoscale(4)".into(),
        f2(auto.map_pct),
        f2(auto.upload_ratio * 100.0),
        format!("{}", auto.deadline_misses),
        format!("{}", auto.link_fallbacks + auto.admission_fallbacks),
        f2(auto.latency.mean_s() * 1000.0),
    ]);

    Report::new(
        "scheduling",
        "Extension: cloud scheduling control plane under bursty traffic (HELMET streaming)",
        t,
    )
    .with_note(
        "burst drive (8 in flight, max_batch 4): deadline-aware serves the tightest deadlines \
         first, difficulty-priority the hardest cases first (both hold back 2 batches)",
    )
    .with_note(format!(
        "admission row: {} of our frames (plus background's — {} rejects total) were refused at \
         the queue limit and served edge-only with zero uplink spent",
        adm.admission_fallbacks, adm_stats.admission_rejects
    ))
    .with_note(format!(
        "autoscale row is bit-identical to steady/fifo (scaling is wall-clock only): \
         peak {} of 4 workers, {} resizes",
        auto_stats.peak_workers, auto_stats.scale_changes
    ))
    .with_note("deterministic: virtual clocks, seeded RNG streams, randomness-free schedulers")
}

/// Extension: multi-edge serving — N edge sessions with heterogeneous links
/// and policies sharing one batched cloud server, a scenario the paper's
/// single-edge deployment (and our legacy `run_system`) cannot express.
pub fn multiedge(cfg: &ExpConfig) -> Report {
    let run = pair_run(
        ModelKind::VggLiteSsd,
        ModelKind::SsdVgg16,
        SplitId::Helmet,
        cfg,
    );
    let (small, big) = run.detectors(ModelKind::VggLiteSsd, ModelKind::SsdVgg16);
    let disc = run.discriminator();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(big);

    let mut cloud = CloudServer::spawn(
        CloudConfig {
            max_batch: 4,
            ..CloudConfig::default()
        },
        big,
    );
    let base = SessionConfig {
        frame_size: (cfg.render_size.0.max(96), cfg.render_size.1.max(96)),
        ..SessionConfig::new(run.num_classes)
    };
    let specs: [(
        &str,
        simnet::LinkModel,
        Box<dyn smallbig_core::OffloadPolicy>,
    ); 4] = [
        (
            "fast-wifi + discriminator",
            simnet::LinkModel::fast_wifi(),
            Box::new(disc.clone()),
        ),
        (
            "wlan + discriminator",
            simnet::LinkModel::wlan(),
            Box::new(disc.clone()),
        ),
        (
            "cellular + random 30%",
            simnet::LinkModel::cellular(),
            Box::new(Policy::Random {
                upload_fraction: 0.3,
                seed: 7,
            }),
        ),
        (
            "wlan + cloud-only",
            simnet::LinkModel::wlan(),
            Box::new(Policy::CloudOnly),
        ),
    ];
    let mut names = Vec::new();
    let mut sessions = Vec::new();
    for (i, (name, link, policy)) in specs.into_iter().enumerate() {
        names.push(name);
        sessions.push(cloud.connect(
            SessionConfig {
                link,
                seed: 1 + i as u64,
                ..base.clone()
            },
            &small,
            policy,
        ));
    }
    // Skewed traffic: session k sees every (k+1)-th frame of the stream.
    for (i, scene) in run.split.test.iter().enumerate() {
        for (k, session) in sessions.iter_mut().enumerate() {
            if i % (k + 1) == 0 {
                session.submit(scene);
            }
        }
    }

    let mut t = Table::new(vec![
        "edge session".into(),
        "frames".into(),
        "upload(%)".into(),
        "mAP(%)".into(),
        "total(s)".into(),
        "mean latency(ms)".into(),
    ]);
    for (name, session) in names.iter().zip(sessions.iter_mut()) {
        let r = session.drain();
        t.add_row(vec![
            (*name).into(),
            r.frames.to_string(),
            f2(r.upload_ratio * 100.0),
            f2(r.map_pct),
            f2(r.total_time_s),
            f2(r.latency.mean_s() * 1000.0),
        ]);
    }
    drop(sessions);
    let stats = cloud.shutdown();
    Report::new(
        "multiedge",
        "Extension: heterogeneous multi-edge serving against one batched cloud",
        t,
    )
    .with_note(format!(
        "cloud served {} frames in {} batches (max batch 4), busy {:.2}s",
        stats.served, stats.batches, stats.busy_s
    ))
    .with_note("sessions share one FIFO scheduler; links and policies differ per edge")
}

/// Extension: calibration drift and the model-update loop (PR 10).
///
/// A HELMET camera lives through a day → night → dawn drift schedule
/// (night: harsher blur and noise, dimmer illumination, smaller apparent
/// objects). Both calibrations drive a streaming difficulty-quantile
/// policy targeting 50% uploads:
///
/// * **static** keeps whatever score history it accumulates on-device —
///   after the swap its long day history ranks nearly every night frame
///   as upload-worthy (bandwidth blowout), and at dawn the accumulated
///   night mass ranks day frames as easy, so truly difficult frames stay
///   local (recall collapse);
/// * **updated** receives the cloud's refit artifact at every window
///   boundary — the `quantile_scores` replay `UpdatePublisher`'s epoch
///   refit, so its adaptation lags each swap by exactly one window, like
///   the real rollout.
///
/// Per window the table reports the realised upload ratio (target 50%)
/// and difficult-case recall (fraction of truly difficult frames each
/// stream uploaded).
pub fn drift(cfg: &ExpConfig) -> Report {
    use datagen::{Dataset, DatasetProfile, DriftPhase, DriftSchedule};
    use modelzoo::SimDetector;
    use smallbig_core::{
        calibrate, detect_all, label_dataset_with, CalibrationUpdate, OffloadPolicy, PolicyInput,
        QuantileStream, ScoreKind,
    };

    const WINDOW_S: f64 = 60.0;
    const WINDOWS: usize = 9;
    const TARGET: f64 = 0.5;
    let day = DatasetProfile::helmet();
    let schedule = DriftSchedule {
        phases: vec![
            DriftPhase {
                start_s: 0.0,
                profile: day.clone(),
            },
            DriftPhase {
                start_s: 3.0 * WINDOW_S,
                profile: day.night(),
            },
            DriftPhase {
                start_s: 6.0 * WINDOW_S,
                profile: day.clone(),
            },
        ],
    };
    schedule.validate().expect("well-formed schedule");
    let num_classes = day.taxonomy.len();
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, num_classes);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, num_classes);
    let n = ((400.0 * cfg.scale).round() as usize).max(24);

    // Day-time calibration, as the factory would ship it: the confidence
    // threshold for difficulty labelling plus a day score history warmed
    // into both streams.
    let train = Dataset::generate("drift-train", &day, n, 0xd21f7);
    let (calibration, _) = calibrate(&train, &small, &big);
    let t_conf = calibration.thresholds.conf;
    let kind = ScoreKind::Difficulty { t_conf };
    let mut static_stream = QuantileStream::new(kind, TARGET);
    let mut updated_stream = QuantileStream::new(kind, TARGET);
    // The camera has been deployed for a while: weeks of day traffic give
    // the on-device history real inertia (several windows' worth of
    // scores), which is exactly what makes it slow to track a swap.
    for pass in 0..4u64 {
        let warm_data = Dataset::generate("drift-warm", &day, n, 0xd21f7 ^ (pass << 40));
        let warm = detect_all(&warm_data, &small, &big);
        for (scene, (small_dets, _)) in warm_data.scenes().iter().zip(&warm) {
            for stream in [&mut static_stream, &mut updated_stream] {
                stream.decide(&PolicyInput {
                    scene,
                    small_dets,
                    label: None,
                    num_classes,
                    link: None,
                    cloud_queue: None,
                });
            }
        }
    }

    let mut t = Table::new(vec![
        "window / phase".into(),
        "static upload(%)".into(),
        "updated upload(%)".into(),
        "static recall(%)".into(),
        "updated recall(%)".into(),
    ]);
    let (mut static_dev, mut updated_dev) = (0.0f64, 0.0f64);
    let mut recall_margin = Vec::new();
    for w in 0..WINDOWS {
        let t_s = w as f64 * WINDOW_S;
        let phase = ["day", "night", "dawn"][schedule.phase_index(t_s)];
        let window = Dataset::generate(
            &format!("drift-w{w}"),
            schedule.profile_at(t_s),
            n,
            0xd21f7 ^ ((w as u64 + 1) << 8),
        );
        let dets = detect_all(&window, &small, &big);
        let examples = label_dataset_with(&window, &dets, t_conf);
        // (uploads, difficult frames uploaded) per stream.
        let mut counts = [(0usize, 0usize); 2];
        let mut fresh_scores = Vec::with_capacity(window.len());
        let difficult = examples.iter().filter(|e| e.label.is_difficult()).count();
        for ((scene, (small_dets, _)), ex) in window.scenes().iter().zip(&dets).zip(&examples) {
            let streams = [&mut static_stream, &mut updated_stream];
            for (i, stream) in streams.into_iter().enumerate() {
                let input = PolicyInput {
                    scene,
                    small_dets,
                    label: None,
                    num_classes,
                    link: None,
                    cloud_queue: None,
                };
                let upload = stream.decide(&input).is_upload();
                if i == 1 {
                    fresh_scores.push(stream.difficulty(&input).expect("quantile difficulty"));
                }
                counts[i].0 += upload as usize;
                counts[i].1 += (upload && ex.label.is_difficult()) as usize;
            }
        }
        let frac = |c: usize| c as f64 / window.len() as f64;
        let recall = |c: usize| {
            if difficult == 0 {
                1.0
            } else {
                c as f64 / difficult as f64
            }
        };
        static_dev += (frac(counts[0].0) - TARGET).abs();
        updated_dev += (frac(counts[1].0) - TARGET).abs();
        if phase == "dawn" {
            recall_margin.push(recall(counts[1].1) - recall(counts[0].1));
        }
        t.add_row(vec![
            format!("{w} / {phase}"),
            f2(frac(counts[0].0) * 100.0),
            f2(frac(counts[1].0) * 100.0),
            f2(recall(counts[0].1) * 100.0),
            f2(recall(counts[1].1) * 100.0),
        ]);
        // Window boundary: the cloud's refit artifact replaces the
        // updated stream's score history, exactly as `apply_calibration`
        // does on a live session.
        fresh_scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let mut artifact = CalibrationUpdate::factory(calibration.thresholds);
        artifact.version = w as u64 + 1;
        artifact.quantile_scores = fresh_scores;
        assert!(updated_stream.apply_calibration(&artifact));
    }
    let dawn_margin = 100.0 * recall_margin.iter().cloned().fold(f64::MIN, f64::max);
    Report::new(
        "drift",
        "Extension: day→night→dawn drift — on-device history vs the model-update loop (HELMET, 50% target)",
        t,
    )
    .with_note(format!(
        "mean |upload − target|: static {} pp, update loop {} pp",
        f2(100.0 * static_dev / WINDOWS as f64),
        f2(100.0 * updated_dev / WINDOWS as f64)
    ))
    .with_note(format!(
        "largest dawn-window difficult-case recall margin of the update loop: {} pp — \
         the night-polluted on-device history keeps difficult day frames local",
        f2(dawn_margin)
    ))
    .with_note("count/area thresholds stay put under this drift; the score distribution is what moves")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perclass_has_twenty_rows() {
        let r = perclass(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 20);
    }

    #[test]
    fn compress_experiment_has_eight_rows() {
        let r = compress(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 8);
    }

    #[test]
    fn ablation_deadline_rows() {
        let r = ablation_deadline(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 5);
    }

    #[test]
    fn motivation_quick() {
        let r = motivation(&ExpConfig::quick());
        assert!(r.table.num_rows() > 3);
        assert!(r.notes[0].contains("split points transfer more"));
    }

    #[test]
    fn ablation_features_has_five_rows() {
        let r = ablation_features(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 5);
    }

    #[test]
    fn ablation_tconf_sweeps() {
        let r = ablation_tconf(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 9);
    }

    #[test]
    fn ablation_links_runs_three() {
        let r = ablation_links(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 3);
    }

    #[test]
    fn degraded_covers_three_traces_by_three_policies() {
        let r = degraded(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 9);
        let text = r.to_string();
        assert!(text.contains("outage"));
        assert!(text.contains("bursty"));
        assert!(text.contains("diurnal"));
    }

    #[test]
    fn drift_covers_nine_windows_and_reports_margins() {
        let r = drift(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 9, "3 day + 3 night + 3 dawn windows");
        let text = r.to_string();
        assert!(text.contains("night"));
        assert!(text.contains("dawn"));
        assert!(text.contains("recall margin"));
    }

    #[test]
    fn scheduling_covers_grid_and_control_rows() {
        let r = scheduling(&ExpConfig::quick());
        assert_eq!(r.table.num_rows(), 11, "3 scenarios × 3 schedulers + 2");
        let text = r.to_string();
        assert!(text.contains("deadline-aware"));
        assert!(text.contains("difficulty-priority"));
        assert!(text.contains("queue_limit"));
        assert!(text.contains("autoscale"));
    }
}
