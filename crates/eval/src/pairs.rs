//! Shared (small, big, split) evaluation machinery with process-level caching.
//!
//! Several tables report different projections of the same run (e.g. Tables
//! III and IV both need small-model-1 over all four splits), so runs are
//! memoised on `(small, big, split, scale)`.

use datagen::{Split, SplitId};
use modelzoo::{ModelKind, SimDetector};
use parking_lot::Mutex;
use smallbig_core::{
    calibrate, evaluate, BinaryStats, Calibration, DifficultCaseDiscriminator, EvalConfig,
    EvalOutcome, LabeledExample, Policy,
};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Experiment-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpConfig {
    /// Dataset scale in `(0, 1]` (1 = the paper's full split sizes).
    pub scale: f64,
    /// Render resolution for pixel-level baselines (blur) and the runtime.
    pub render_size: (usize, usize),
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1.0,
            render_size: (128, 96),
        }
    }
}

impl ExpConfig {
    /// A reduced-scale config for quick runs and tests.
    pub fn quick() -> Self {
        ExpConfig {
            scale: 0.02,
            render_size: (64, 48),
        }
    }
}

/// Everything a (small, big, split) run produces.
#[derive(Debug, Clone)]
pub struct PairRun {
    /// Which split was used.
    pub split_id: SplitId,
    /// The calibration obtained on the training set.
    pub calibration: Calibration,
    /// Labelled training examples (Fig. 4 data).
    pub train_examples: Vec<LabeledExample>,
    /// Discriminator quality on the test set (predicted features).
    pub test_stats: BinaryStats,
    /// Our policy's outcome on the test set.
    pub ours: EvalOutcome,
    /// The loaded split (kept for baseline policies).
    pub split: Arc<Split>,
    /// Number of classes.
    pub num_classes: usize,
}

impl PairRun {
    /// The calibrated discriminator for this pair.
    pub fn discriminator(&self) -> DifficultCaseDiscriminator {
        DifficultCaseDiscriminator::new(self.calibration.thresholds)
    }

    /// The detectors for this pair (reconstructed deterministically).
    pub fn detectors(&self, small: ModelKind, big: ModelKind) -> (SimDetector, SimDetector) {
        (
            SimDetector::new(small, self.split_id, self.num_classes),
            SimDetector::new(big, self.split_id, self.num_classes),
        )
    }

    /// Evaluates a different policy on the same split/pair.
    pub fn evaluate_policy(
        &self,
        small_kind: ModelKind,
        big_kind: ModelKind,
        policy: &Policy,
    ) -> EvalOutcome {
        let (small, big) = self.detectors(small_kind, big_kind);
        evaluate(
            &self.split.test,
            &small,
            &big,
            policy,
            &EvalConfig::default(),
        )
    }
}

type CacheKey = (ModelKind, ModelKind, SplitId, u64);

fn cache() -> &'static Mutex<HashMap<CacheKey, Arc<PairRun>>> {
    static CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<PairRun>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Runs (or retrieves from cache) the full pipeline for one pair on a split:
/// calibration on the train set, discriminator stats, our policy's outcome.
pub fn pair_run(
    small_kind: ModelKind,
    big_kind: ModelKind,
    split_id: SplitId,
    cfg: &ExpConfig,
) -> Arc<PairRun> {
    let key = (small_kind, big_kind, split_id, cfg.scale.to_bits());
    if let Some(hit) = cache().lock().get(&key) {
        return Arc::clone(hit);
    }
    let split = Arc::new(Split::load_scaled(split_id, cfg.scale));
    let num_classes = split.test.taxonomy().len();
    let small = SimDetector::new(small_kind, split_id, num_classes);
    let big = SimDetector::new(big_kind, split_id, num_classes);
    let (calibration, train_examples) = calibrate(&split.train, &small, &big);
    let disc = DifficultCaseDiscriminator::new(calibration.thresholds);
    let test_stats = smallbig_core::discriminator_test_stats(&split.test, &small, &big, &disc);
    let ours = evaluate(
        &split.test,
        &small,
        &big,
        &Policy::DifficultCase(disc),
        &EvalConfig::default(),
    );
    let run = Arc::new(PairRun {
        split_id,
        calibration,
        train_examples,
        test_stats,
        ours,
        split,
        num_classes,
    });
    cache().lock().insert(key, Arc::clone(&run));
    run
}

/// The paper's three SSD small models in table order.
pub const SSD_SMALLS: [ModelKind; 3] = [
    ModelKind::VggLiteSsd,
    ModelKind::MobileNetV1Ssd,
    ModelKind::MobileNetV2Ssd,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_arc() {
        let cfg = ExpConfig::quick();
        let a = pair_run(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            SplitId::Voc07,
            &cfg,
        );
        let b = pair_run(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            SplitId::Voc07,
            &cfg,
        );
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn pair_run_is_complete() {
        let cfg = ExpConfig::quick();
        let run = pair_run(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            SplitId::Voc07,
            &cfg,
        );
        assert!(!run.train_examples.is_empty());
        assert!(run.ours.num_images > 0);
        assert!(run.calibration.thresholds.conf > 0.0);
        assert!(run.test_stats.accuracy > 0.0);
    }

    #[test]
    fn evaluate_policy_reuses_split() {
        let cfg = ExpConfig::quick();
        let run = pair_run(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            SplitId::Voc07,
            &cfg,
        );
        let cloud = run.evaluate_policy(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            &Policy::CloudOnly,
        );
        assert_eq!(cloud.upload_ratio, 1.0);
        assert_eq!(cloud.num_images, run.ours.num_images);
    }
}
