//! Shared (small, big, split) evaluation machinery with process-level caching.
//!
//! Several tables report different projections of the same run (e.g. Tables
//! III and IV both need small-model-1 over all four splits), so runs are
//! memoised on `(small, big, split, scale)`.

use datagen::{Split, SplitId};
use detcore::ImageDetections;
use modelzoo::{ModelKind, SimDetector};
use parking_lot::Mutex;
use smallbig_core::{
    calibrate, detect_all, discriminator_stats_on, evaluate, evaluate_detections, BinaryStats,
    Calibration, DifficultCaseDiscriminator, EvalConfig, EvalOutcome, LabeledExample, Policy,
};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Experiment-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpConfig {
    /// Dataset scale in `(0, 1]` (1 = the paper's full split sizes).
    pub scale: f64,
    /// Render resolution for pixel-level baselines (blur) and the runtime.
    pub render_size: (usize, usize),
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1.0,
            render_size: (128, 96),
        }
    }
}

impl ExpConfig {
    /// A reduced-scale config for quick runs and tests.
    pub fn quick() -> Self {
        ExpConfig {
            scale: 0.02,
            render_size: (64, 48),
        }
    }
}

/// Everything a (small, big, split) run produces.
#[derive(Debug, Clone)]
pub struct PairRun {
    /// Which split was used.
    pub split_id: SplitId,
    /// The calibration obtained on the training set.
    pub calibration: Calibration,
    /// Labelled training examples (Fig. 4 data).
    pub train_examples: Vec<LabeledExample>,
    /// Discriminator quality on the test set (predicted features).
    pub test_stats: BinaryStats,
    /// Our policy's outcome on the test set.
    pub ours: EvalOutcome,
    /// The loaded split (kept for baseline policies).
    pub split: Arc<Split>,
    /// Number of classes.
    pub num_classes: usize,
    /// The model pair this run was computed for.
    small_kind: ModelKind,
    big_kind: ModelKind,
    /// Both models' test-set detections (dataset order). Detectors are
    /// deterministic, so baseline policies evaluated on the same pair reuse
    /// these instead of re-running the models per table.
    test_detections: Arc<Vec<(ImageDetections, ImageDetections)>>,
}

impl PairRun {
    /// The calibrated discriminator for this pair.
    pub fn discriminator(&self) -> DifficultCaseDiscriminator {
        DifficultCaseDiscriminator::new(self.calibration.thresholds)
    }

    /// The detectors for this pair (reconstructed deterministically).
    pub fn detectors(&self, small: ModelKind, big: ModelKind) -> (SimDetector, SimDetector) {
        (
            SimDetector::new(small, self.split_id, self.num_classes),
            SimDetector::new(big, self.split_id, self.num_classes),
        )
    }

    /// Evaluates a different policy on the same split/pair.
    ///
    /// When `(small_kind, big_kind)` is the pair this run was computed for
    /// (the common case — tables sweep policies, not models), the cached
    /// test-set detections are reused; the result is identical either way.
    pub fn evaluate_policy(
        &self,
        small_kind: ModelKind,
        big_kind: ModelKind,
        policy: &Policy,
    ) -> EvalOutcome {
        if small_kind == self.small_kind && big_kind == self.big_kind {
            return evaluate_detections(
                &self.split.test,
                &self.test_detections,
                policy,
                &EvalConfig::default(),
            );
        }
        let (small, big) = self.detectors(small_kind, big_kind);
        evaluate(
            &self.split.test,
            &small,
            &big,
            policy,
            &EvalConfig::default(),
        )
    }
}

type CacheKey = (ModelKind, ModelKind, SplitId, u64);

/// Per-key slot: concurrent callers for the same key block on one
/// computation instead of redoing it (experiments now run in parallel, so
/// a cold cache would otherwise stampede on the shared pairs).
type CacheSlot = Arc<OnceLock<Arc<PairRun>>>;

fn cache() -> &'static Mutex<HashMap<CacheKey, CacheSlot>> {
    static CACHE: OnceLock<Mutex<HashMap<CacheKey, CacheSlot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Runs (or retrieves from cache) the full pipeline for one pair on a split:
/// calibration on the train set, discriminator stats, our policy's outcome.
pub fn pair_run(
    small_kind: ModelKind,
    big_kind: ModelKind,
    split_id: SplitId,
    cfg: &ExpConfig,
) -> Arc<PairRun> {
    let key = (small_kind, big_kind, split_id, cfg.scale.to_bits());
    // The map lock is held only to fetch the key's slot; the expensive
    // computation runs under the slot's OnceLock, which serialises callers
    // of the same key without blocking other keys.
    let slot = Arc::clone(cache().lock().entry(key).or_default());
    Arc::clone(slot.get_or_init(|| compute_pair_run(small_kind, big_kind, split_id, cfg)))
}

fn compute_pair_run(
    small_kind: ModelKind,
    big_kind: ModelKind,
    split_id: SplitId,
    cfg: &ExpConfig,
) -> Arc<PairRun> {
    let split = Arc::new(Split::load_scaled(split_id, cfg.scale));
    let num_classes = split.test.taxonomy().len();
    let small = SimDetector::new(small_kind, split_id, num_classes);
    let big = SimDetector::new(big_kind, split_id, num_classes);
    let (calibration, train_examples) = calibrate(&split.train, &small, &big);
    let disc = DifficultCaseDiscriminator::new(calibration.thresholds);
    // One detection pass over the test set serves the discriminator stats,
    // our policy's outcome, and (via the cache on PairRun) every baseline
    // policy a table evaluates later.
    let test_detections = Arc::new(detect_all(&split.test, &small, &big));
    let test_stats = discriminator_stats_on(&split.test, &test_detections, &disc);
    let ours = evaluate_detections(
        &split.test,
        &test_detections,
        &Policy::DifficultCase(disc),
        &EvalConfig::default(),
    );
    Arc::new(PairRun {
        split_id,
        calibration,
        train_examples,
        test_stats,
        ours,
        split,
        num_classes,
        small_kind,
        big_kind,
        test_detections,
    })
}

/// The paper's three SSD small models in table order.
pub const SSD_SMALLS: [ModelKind; 3] = [
    ModelKind::VggLiteSsd,
    ModelKind::MobileNetV1Ssd,
    ModelKind::MobileNetV2Ssd,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_arc() {
        let cfg = ExpConfig::quick();
        let a = pair_run(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            SplitId::Voc07,
            &cfg,
        );
        let b = pair_run(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            SplitId::Voc07,
            &cfg,
        );
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn pair_run_is_complete() {
        let cfg = ExpConfig::quick();
        let run = pair_run(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            SplitId::Voc07,
            &cfg,
        );
        assert!(!run.train_examples.is_empty());
        assert!(run.ours.num_images > 0);
        assert!(run.calibration.thresholds.conf > 0.0);
        assert!(run.test_stats.accuracy > 0.0);
    }

    #[test]
    fn evaluate_policy_reuses_split() {
        let cfg = ExpConfig::quick();
        let run = pair_run(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            SplitId::Voc07,
            &cfg,
        );
        let cloud = run.evaluate_policy(
            ModelKind::VggLiteSsd,
            ModelKind::SsdVgg16,
            &Policy::CloudOnly,
        );
        assert_eq!(cloud.upload_ratio, 1.0);
        assert_eq!(cloud.num_images, run.ours.num_images);
    }
}
