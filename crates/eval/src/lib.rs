//! # eval — the experiment harness
//!
//! Regenerates **every table and figure** of the paper plus the intro's
//! partition motivation and three ablations. Each experiment returns a
//! [`Report`] containing a rendered [`Table`] with `measured (paper)` cells.
//!
//! Run everything:
//!
//! ```bash
//! cargo run -p eval --release -- all
//! # reduced scale (1% of the published split sizes):
//! cargo run -p eval --release -- --scale 0.01 table3 fig8
//! ```
//!
//! # Example
//!
//! ```
//! use eval::{run_experiment, ExpConfig};
//!
//! let reports = run_experiment("table2", &ExpConfig::quick()).unwrap();
//! assert!(reports[0].to_string().contains("SSD"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exp {
    pub mod extras;
    pub mod figures;
    pub mod tables;
}
mod pairs;
pub mod paper;
mod table;

pub use pairs::{pair_run, ExpConfig, PairRun, SSD_SMALLS};
pub use table::{f2, with_paper, Table};

use std::fmt;

/// A completed experiment: a titled table plus free-form notes.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `"table3"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The result table.
    pub table: Table,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates a report.
    pub fn new(id: &str, title: &str, table: Table) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            table,
            notes: Vec::new(),
        }
    }

    /// Appends a note line.
    pub fn with_note<S: Into<String>>(mut self, note: S) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        write!(f, "{}", self.table)?;
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// All experiment ids in presentation order.
pub const ALL_EXPERIMENTS: [&str; 32] = [
    "motivation",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "table13",
    "table14",
    "table15",
    "table16",
    "table17",
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "ablation-features",
    "ablation-tconf",
    "ablation-links",
    "ablation-deadline",
    "compress",
    "perclass",
    "multiedge",
    "degraded",
    "scheduling",
    "drift",
];

/// Runs one experiment by id (or `"all"`).
///
/// `"all"` fans the experiments out across the harness workers (see
/// [`smallbig_core::par`]); each experiment is deterministic and reports
/// merge back in presentation order, so the output equals the sequential
/// run. Experiments share the process-wide pair-run cache either way.
///
/// # Errors
///
/// Returns the unknown id as `Err` so the CLI can report it.
pub fn run_experiment(id: &str, cfg: &ExpConfig) -> Result<Vec<Report>, String> {
    use exp::{extras, figures, tables};
    let report = match id {
        "all" => {
            let results = smallbig_core::par::ordered_map(ALL_EXPERIMENTS.len(), |i| {
                run_experiment(ALL_EXPERIMENTS[i], cfg)
            });
            let mut out = Vec::new();
            for result in results {
                out.extend(result?);
            }
            return Ok(out);
        }
        "motivation" => extras::motivation(cfg),
        "table1" => tables::table1(cfg),
        "table2" => tables::table2(cfg),
        "table3" => tables::table3(cfg),
        "table4" => tables::table4(cfg),
        "table5" => tables::table5(cfg),
        "table6" => tables::table6(cfg),
        "table7" => tables::table7(cfg),
        "table8" => tables::table8(cfg),
        "table9" => tables::table9(cfg),
        "table10" => tables::table10(cfg),
        "table11" => tables::table11(cfg),
        "table12" => tables::table12(cfg),
        "table13" => tables::table13(cfg),
        "table14" => tables::table14(cfg),
        "table15" => tables::table15(cfg),
        "table16" => tables::table16(cfg),
        "table17" => tables::table17(cfg),
        "fig4" => figures::fig4(cfg),
        "fig7" => figures::fig7(cfg),
        "fig8" => figures::fig8(cfg),
        "fig9" => figures::fig9(cfg),
        "ablation-features" => extras::ablation_features(cfg),
        "ablation-tconf" => extras::ablation_tconf(cfg),
        "ablation-links" => extras::ablation_links(cfg),
        "ablation-deadline" => extras::ablation_deadline(cfg),
        "compress" => extras::compress(cfg),
        "perclass" => extras::perclass(cfg),
        "multiedge" => extras::multiedge(cfg),
        "degraded" => extras::degraded(cfg),
        "scheduling" => extras::scheduling(cfg),
        "drift" => extras::drift(cfg),
        other => return Err(format!("unknown experiment id: {other}")),
    };
    Ok(vec![report])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_error() {
        assert!(run_experiment("table99", &ExpConfig::quick()).is_err());
    }

    #[test]
    fn report_display_contains_notes() {
        let mut t = Table::new(vec!["a".into()]);
        t.add_row(vec!["1".into()]);
        let r = Report::new("x", "title", t).with_note("hello");
        let s = r.to_string();
        assert!(s.contains("## x — title"));
        assert!(s.contains("note: hello"));
    }
}
