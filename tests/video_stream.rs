//! Integration: temporally correlated video through the full system.

use smallbig::datagen::{Dataset, VideoProfile, VideoSequence};
use smallbig::prelude::*;

#[test]
fn video_verdicts_are_temporally_coherent() {
    let profile = VideoProfile::surveillance(DatasetProfile::voc());
    let video = VideoSequence::generate(&profile, 80, 42);
    assert!(video.mean_persistence() > 0.8);

    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
    let disc = DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.2,
        count: 2,
        area: 0.15,
    });

    let verdicts: Vec<CaseKind> = video
        .frames()
        .iter()
        .map(|f| disc.classify(&small.detect(f)))
        .collect();
    let flips = verdicts.windows(2).filter(|w| w[0] != w[1]).count();
    // Correlated frames must flip verdicts far less often than a coin.
    assert!(
        (flips as f64) < verdicts.len() as f64 * 0.4,
        "verdicts flipped {flips}/{} times",
        verdicts.len() - 1
    );
}

#[test]
fn video_dataset_evaluates_like_any_other() {
    let profile = VideoProfile::surveillance(DatasetProfile::helmet());
    let video = VideoSequence::generate(&profile, 60, 3);
    let ds = video.into_dataset("clip", &profile);
    assert_eq!(ds.len(), 60);

    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    let out = evaluate(
        &ds,
        &small,
        &big,
        &Policy::DifficultCase(DifficultCaseDiscriminator::new(Thresholds {
            conf: 0.2,
            count: 3,
            area: 0.05,
        })),
        &EvalConfig::default(),
    );
    assert!(out.big_map_pct >= out.small_map_pct);
    assert!(out.e2e_map_pct >= out.small_map_pct);
    assert!(out.num_images == 60);
}

#[test]
fn static_dataset_has_no_temporal_structure() {
    // Control: i.i.d. scenes share (essentially) no objects across "frames".
    let ds = Dataset::generate("iid", &DatasetProfile::voc(), 50, 5);
    let shared = ds
        .scenes()
        .windows(2)
        .filter(|w| {
            w[0].objects.iter().any(|o| {
                w[1].objects
                    .iter()
                    .any(|p| p.texture_seed == o.texture_seed)
            })
        })
        .count();
    assert_eq!(
        shared, 0,
        "independent scenes never share object identities"
    );
}
