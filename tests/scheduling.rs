//! Conformance suite for the cloud scheduling control plane.
//!
//! Three contracts are pinned here:
//!
//! 1. **FIFO bit-identity.** The default [`FifoBatcher`] must reproduce the
//!    pre-refactor inline batching loop exactly: a proptest drives the
//!    trait implementation and a verbatim transcription of the old logic
//!    through the same arrival/flush event sequences and requires the same
//!    batch partition, and an end-to-end run compares `spawn` (default
//!    config) against `spawn_with(FifoBatcher)` report-for-report.
//!    (`tests/api_equivalence.rs` separately pins the whole stack against
//!    the seed implementation.)
//! 2. **Determinism.** Every scheduler, the admission-control path and the
//!    autoscaler replay bit-identically, across 1/2/4 inference workers
//!    and across runs — scaling trajectories and service orders are pure
//!    functions of virtual-time state.
//! 3. **Admission contract.** A frame refused at the queue limit never
//!    touches the cloud: zero uplink bytes, zero served frames, the local
//!    answer served immediately. A limit that never binds changes nothing
//!    at all — not even RNG draws.

use proptest::prelude::*;
use smallbig::core::{
    AutoscaleConfig, CloudConfig, CloudServer, CloudStats, DifficultCaseDiscriminator, FifoBatcher,
    Policy, QueuedFrame, Scheduler, SchedulerConfig, SessionConfig, SessionReport, Thresholds,
};
use smallbig::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// 1. FifoBatcher vs the transcribed inline loop
// ---------------------------------------------------------------------------

/// The pre-refactor cloud-side batching logic, transcribed from the inline
/// loop the `Scheduler` trait replaced: arrivals append to a `Vec`; as
/// soon as `queue.len() >= max_batch` the **whole queue** drains as one
/// batch (it can never exceed `max_batch`, because this check runs after
/// every arrival); a flush/deregister/shutdown drains whatever is queued
/// as one batch.
#[derive(Default)]
struct InlineLoopOracle {
    queue: Vec<u64>,
}

impl InlineLoopOracle {
    fn frame(&mut self, ticket: u64, max_batch: usize, batches: &mut Vec<Vec<u64>>) {
        self.queue.push(ticket);
        if self.queue.len() >= max_batch {
            batches.push(std::mem::take(&mut self.queue));
        }
    }

    fn flush(&mut self, batches: &mut Vec<Vec<u64>>) {
        if !self.queue.is_empty() {
            batches.push(std::mem::take(&mut self.queue));
        }
    }
}

/// Drives a [`Scheduler`] exactly as the cloud worker does: push, then
/// dispatch while `ready`; flush drains batch by batch.
fn drive_scheduler(
    sched: &mut dyn Scheduler,
    max_batch: usize,
    events: &[Option<u64>],
) -> Vec<Vec<u64>> {
    let mut batches = Vec::new();
    let mut out = Vec::new();
    let mut drain = |sched: &mut dyn Scheduler, ready_only: bool, batches: &mut Vec<Vec<u64>>| loop {
        if ready_only && !sched.ready(max_batch) {
            break;
        }
        if sched.is_empty() {
            break;
        }
        sched.take_batch(max_batch, &mut out);
        if out.is_empty() {
            break;
        }
        batches.push(out.iter().map(|f| f.ticket()).collect());
    };
    for event in events {
        match event {
            Some(ticket) => {
                sched.push(QueuedFrame::synthetic(
                    0,
                    *ticket,
                    *ticket as f64 * 0.01,
                    0.0,
                    None,
                ));
                drain(sched, true, &mut batches);
            }
            None => drain(sched, false, &mut batches),
        }
    }
    drain(sched, false, &mut batches);
    batches
}

proptest! {
    /// The trait-based FIFO batcher partitions any arrival/flush sequence
    /// into exactly the batches the pre-refactor inline loop formed.
    #[test]
    fn fifo_batcher_matches_inline_loop_oracle(
        max_batch in 1usize..6,
        // `Some(i)` is the i-th frame arriving, `None` a flush.
        flushes in prop::collection::vec(any::<bool>(), 1..80),
    ) {
        let mut next_ticket = 0u64;
        let events: Vec<Option<u64>> = flushes
            .iter()
            .map(|flush| {
                if *flush {
                    None
                } else {
                    next_ticket += 1;
                    Some(next_ticket - 1)
                }
            })
            .collect();

        let mut oracle = InlineLoopOracle::default();
        let mut expected = Vec::new();
        for event in &events {
            match event {
                Some(ticket) => oracle.frame(*ticket, max_batch, &mut expected),
                None => oracle.flush(&mut expected),
            }
        }
        oracle.flush(&mut expected);

        let mut fifo = FifoBatcher::new();
        let actual = drive_scheduler(&mut fifo, max_batch, &events);
        prop_assert_eq!(actual, expected);
    }
}

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

fn fixture() -> (Dataset, SimDetector, Arc<dyn Detector + Send + Sync>) {
    let data = Dataset::generate("sched", &DatasetProfile::helmet(), 60, 9);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big: Arc<dyn Detector + Send + Sync> =
        Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
    (data, small, big)
}

fn disc() -> DifficultCaseDiscriminator {
    DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.21,
        count: 4,
        area: 0.03,
    })
}

/// Burst-drives one discriminator session (plus a deadline-less cloud-only
/// co-tenant, so the queue has cross-session frames to order) and returns
/// both reports and the cloud stats.
fn burst_run(config: CloudConfig) -> (SessionReport, SessionReport, CloudStats) {
    let (data, small, big) = fixture();
    let mut cloud = CloudServer::spawn(config, big);
    let mut background = cloud.connect(
        SessionConfig {
            frame_size: (96, 96),
            seed: 0x7e57,
            ..SessionConfig::new(2)
        },
        &small,
        Box::new(Policy::CloudOnly),
    );
    let mut session = cloud.connect(
        SessionConfig {
            frame_size: (96, 96),
            deadline_s: Some(0.4),
            ..SessionConfig::new(2)
        },
        &small,
        Box::new(disc()),
    );
    for round in data.scenes().chunks(10) {
        let (ours, burst) = round.split_at(round.len().min(4));
        for scene in burst {
            background.submit(scene);
        }
        let tickets: Vec<_> = ours.iter().map(|s| session.submit(s)).collect();
        for t in tickets {
            let _ = session.poll(t);
        }
    }
    let (ra, rb) = (session.drain(), background.drain());
    drop((session, background));
    (ra, rb, cloud.shutdown())
}

// ---------------------------------------------------------------------------
// 1b. End-to-end FIFO identity
// ---------------------------------------------------------------------------

/// `spawn` with the default config and `spawn_with(FifoBatcher)` are the
/// same server: reports and stats match bit for bit.
#[test]
fn explicit_fifo_batcher_is_bit_identical_to_default() {
    let run = |explicit: bool| {
        let (data, small, big) = fixture();
        let config = CloudConfig {
            max_batch: 3,
            ..CloudConfig::default()
        };
        let mut cloud = if explicit {
            CloudServer::spawn_with(config, big, Box::new(FifoBatcher::new()))
        } else {
            CloudServer::spawn(config, big)
        };
        let mut session = cloud.connect(
            SessionConfig {
                frame_size: (96, 96),
                ..SessionConfig::new(2)
            },
            &small,
            Box::new(disc()),
        );
        for scene in data.iter() {
            session.submit(scene);
        }
        let report = session.drain();
        drop(session);
        (report, cloud.shutdown())
    };
    assert_eq!(run(false), run(true));
}

// ---------------------------------------------------------------------------
// 2. Deterministic replay across worker counts and runs
// ---------------------------------------------------------------------------

/// Every scheduler (and the autoscaler) replays bit-identically, and the
/// inference-pool size — any fixed size, any autoscaling trajectory —
/// never leaks into a report.
#[test]
fn scheduler_replay_is_bit_identical_across_worker_counts() {
    let configs = [
        (SchedulerConfig::Fifo, None),
        (SchedulerConfig::DeadlineAware { lookahead: 2 }, None),
        (SchedulerConfig::DifficultyPriority { lookahead: 2 }, None),
        (
            SchedulerConfig::DeadlineAware { lookahead: 2 },
            Some(AutoscaleConfig {
                frames_per_worker: 2,
                min_workers: 1,
            }),
        ),
    ];
    for (scheduler, autoscale) in configs {
        let run = |workers: usize| {
            let (ra, rb, stats) = burst_run(CloudConfig {
                max_batch: 4,
                workers,
                scheduler,
                autoscale,
                ..CloudConfig::default()
            });
            // Stats describing the wall-clock pool (peak/resizes) may
            // legitimately differ across pool sizes; everything virtual
            // must not.
            (ra, rb, stats.served, stats.batches, stats.busy_s)
        };
        let baseline = run(1);
        assert_eq!(baseline, run(1), "replay must be deterministic");
        for workers in [2, 4] {
            assert_eq!(baseline, run(workers), "{scheduler:?} workers {workers}");
        }
    }
}

/// The autoscaler changes nothing observable except the cloud's own
/// trajectory counters — which are themselves deterministic.
#[test]
fn autoscaling_trajectory_is_deterministic_and_reportless() {
    let config = |autoscale| CloudConfig {
        max_batch: 4,
        workers: 4,
        faults: FaultPlan::new().with_stall(2.0, 3.0),
        autoscale,
        ..CloudConfig::default()
    };
    let fixed = burst_run(config(None));
    let scaled = burst_run(config(Some(AutoscaleConfig {
        frames_per_worker: 2,
        min_workers: 1,
    })));
    assert_eq!(fixed.0, scaled.0, "session report must not see scaling");
    assert_eq!(fixed.1, scaled.1, "co-tenant report must not see scaling");
    assert_eq!(fixed.2.served, scaled.2.served);
    assert_eq!(fixed.2.busy_s, scaled.2.busy_s);
    // The trajectory itself is deterministic and visible in the stats.
    assert_eq!(fixed.2.peak_workers, 0, "disabled autoscaler reports 0");
    assert!(scaled.2.peak_workers >= 1);
    let replay = burst_run(config(Some(AutoscaleConfig {
        frames_per_worker: 2,
        min_workers: 1,
    })));
    assert_eq!(scaled.2, replay.2);
}

// ---------------------------------------------------------------------------
// 3. Priority schedulers actually reorder service
// ---------------------------------------------------------------------------

/// Under burst load with a deadline-less co-tenant, serving our deadlined
/// (and difficulty-scored) frames first must not be worse — and for this
/// pinned workload is strictly better — on deadline misses.
#[test]
fn priority_schedulers_cut_deadline_misses_under_bursts() {
    let run = |scheduler| {
        burst_run(CloudConfig {
            max_batch: 4,
            scheduler,
            ..CloudConfig::default()
        })
        .0
    };
    let fifo = run(SchedulerConfig::Fifo);
    let edf = run(SchedulerConfig::DeadlineAware { lookahead: 2 });
    let hard = run(SchedulerConfig::DifficultyPriority { lookahead: 2 });
    // Routing is scheduler-independent: the policy decides before the
    // cloud ever sees a frame.
    assert_eq!(fifo.uploads, edf.uploads);
    assert_eq!(fifo.uploads, hard.uploads);
    assert_eq!(fifo.uplink_bytes, edf.uplink_bytes);
    assert!(fifo.deadline_misses > 0, "the workload must be contended");
    assert!(
        edf.deadline_misses < fifo.deadline_misses,
        "EDF {} vs FIFO {}",
        edf.deadline_misses,
        fifo.deadline_misses
    );
    assert!(
        hard.deadline_misses < fifo.deadline_misses,
        "difficulty-priority {} vs FIFO {}",
        hard.deadline_misses,
        fifo.deadline_misses
    );
}

// ---------------------------------------------------------------------------
// 4. Admission control contract
// ---------------------------------------------------------------------------

/// Over-limit frames never touch the cloud: no uplink bytes, no served
/// frames, local answers, and the refusals are all accounted.
#[test]
fn admission_rejected_frames_never_touch_the_cloud() {
    let (data, small, big) = fixture();
    let mut cloud = CloudServer::spawn(
        CloudConfig {
            queue_limit: Some(0),
            ..CloudConfig::default()
        },
        big,
    );
    let mut session = cloud.connect(
        SessionConfig {
            frame_size: (96, 96),
            ..SessionConfig::new(2)
        },
        &small,
        Box::new(Policy::CloudOnly),
    );
    let mut results = Vec::new();
    for scene in data.iter() {
        let t = session.submit(scene);
        results.push(session.poll(t).expect("admission fallback resolves"));
    }
    let report = session.drain();
    drop(session);
    let stats = cloud.shutdown();

    assert_eq!(report.frames, 60);
    assert_eq!(report.uploads, 0, "refused frames are not uploads");
    assert_eq!(report.uplink_bytes, 0, "no uplink is ever spent");
    assert_eq!(report.admission_fallbacks, 60);
    assert_eq!(report.link_fallbacks, 0);
    assert_eq!(stats.served, 0, "the big model never runs");
    assert_eq!(stats.admission_rejects, 60);
    for r in &results {
        assert!(r.admission_fallback);
        assert!(r.decision.is_upload(), "the policy did want the cloud");
        assert!(!r.link_fallback);
        assert_eq!(r.breakdown.uplink_s, 0.0);
        assert_eq!(r.breakdown.cloud_infer_s, 0.0);
    }
}

/// A queue limit that never binds is free: reports are bit-identical to
/// running with no limit at all (the probes draw no randomness and cost
/// no virtual time).
#[test]
fn generous_queue_limit_changes_nothing() {
    let run = |queue_limit| {
        burst_run(CloudConfig {
            max_batch: 4,
            queue_limit,
            ..CloudConfig::default()
        })
    };
    let unlimited = run(None);
    let generous = run(Some(10_000));
    assert_eq!(unlimited.0, generous.0);
    assert_eq!(unlimited.1, generous.1);
    assert_eq!(unlimited.2.served, generous.2.served);
    assert_eq!(generous.2.admission_rejects, 0);
}

/// An invalid autoscale configuration fails on the caller's thread at
/// spawn time — not on the cloud worker at its first batch.
#[test]
#[should_panic(expected = "frames_per_worker")]
fn invalid_autoscale_config_fails_at_spawn() {
    let (_, _, big) = fixture();
    let _ = CloudServer::spawn(
        CloudConfig {
            autoscale: Some(AutoscaleConfig {
                frames_per_worker: 0,
                min_workers: 1,
            }),
            ..CloudConfig::default()
        },
        big,
    );
}

/// A binding limit sheds load deterministically and the shed frames keep
/// their quality floor (the local answer is a real detection result).
#[test]
fn binding_queue_limit_sheds_deterministically() {
    let run = || {
        burst_run(CloudConfig {
            max_batch: 4,
            queue_limit: Some(3),
            ..CloudConfig::default()
        })
    };
    let (a, ab, astats) = run();
    let (b, bb, bstats) = run();
    assert_eq!(a, b);
    assert_eq!(ab, bb);
    assert_eq!(astats, bstats);
    let total_refused = a.admission_fallbacks + ab.admission_fallbacks;
    assert!(total_refused > 0, "the limit must bind under bursts");
    assert_eq!(astats.admission_rejects, total_refused);
    assert!(a.map_pct > 0.0, "shed frames still serve local detections");
}
