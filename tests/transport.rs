//! Distributed-deployment conformance: real OS processes over loopback TCP
//! must produce the same per-session reports as the in-memory transport
//! and the historical in-process channel path, and the failure machinery
//! (half-open connections, version skew, kills, reconnects) must degrade
//! loudly and boundedly instead of hanging.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smallbig::core::transport::{
    client_handshake, memory_pair, serve, serve_connection, HandshakeError, Hello, Listener,
    RemoteCloud, ServeOptions, TcpTransport, TcpWireListener, Transport, Welcome, FRAME_QUEUE_CAP,
    HELLO_MAGIC,
};
use smallbig::core::wire::{encode_frame, Encoding};
use smallbig::core::{CloudServer, CloudStats, SessionReport, UpdateConfig};
use smallbig::distributed::{
    run_device_session, run_fleet_in_memory, run_fleet_processes, CloudSpec, DeploymentSpec,
    EdgeSpec, LinkSpec, PolicySpec, TraceSpec, LINE_CONNECTED, LINE_REPORT, LINE_STATS,
};
use smallbig::modelzoo::Detector;
use smallbig::simnet::RetryConfig;
use smallbig_core::SchedulerConfig;

const CLOUD_BIN: &str = env!("CARGO_BIN_EXE_cloud-node");
const EDGE_BIN: &str = env!("CARGO_BIN_EXE_edge-node");

fn quick_retry() -> RetryConfig {
    RetryConfig {
        base_s: 0.05,
        multiplier: 1.5,
        max_retries: 8,
    }
}

fn small_fleet(edges: usize, frames: usize) -> DeploymentSpec {
    DeploymentSpec {
        edges,
        devices_per_edge: 1,
        frames_per_device: frames,
        edge: EdgeSpec {
            retry: quick_retry(),
            ..EdgeSpec::default()
        },
        ..DeploymentSpec::default()
    }
}

/// The acceptance bar: one cloud-node and three edge-node OS processes
/// over loopback TCP produce merged per-session results bit-identical to
/// the same workload over the in-memory transport in this process.
#[test]
fn process_fleet_matches_in_memory_fleet_bit_for_bit() {
    let spec = small_fleet(3, 6);
    let reference = run_fleet_in_memory(&spec);
    let processes = run_fleet_processes(
        &spec,
        Path::new(CLOUD_BIN),
        Path::new(EDGE_BIN),
        Duration::from_secs(120),
    )
    .expect("process fleet completes");

    assert_eq!(processes.sessions, reference.sessions);
    assert_eq!(processes.frames, reference.frames);
    assert_eq!(processes.uploads, reference.uploads);
    assert_eq!(processes.uplink_bytes, reference.uplink_bytes);
    assert_eq!(processes.cloud.connections, 3);
    assert_eq!(processes.cloud.aborted, 0);
    assert_eq!(processes.cloud.refused, 0);
    assert_eq!(processes.cloud.cloud.sessions, 3);
    let ids: Vec<u64> = processes.sessions.iter().map(|s| s.session).collect();
    assert_eq!(ids, vec![0, 1, 2]);
}

/// Runs the single session of `spec` over real loopback TCP against a
/// `serve` loop in this process, requesting `encoding` in the handshake
/// (and asserting the cloud granted exactly that).
fn run_tcp_single_as(spec: &DeploymentSpec, encoding: Encoding) -> (SessionReport, CloudStats) {
    assert_eq!(spec.total_sessions(), 1);
    let mut listener = TcpWireListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr();
    let cloud_cfg = spec.cloud.build();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let opts = ServeOptions {
        expect_sessions: Some(1),
        ..ServeOptions::default()
    };
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let stop = AtomicBool::new(false);
            serve(&mut listener, &cloud_cfg, &big, &opts, &stop)
        });
        let remote = RemoteCloud::connect_tcp_with(&addr, 0, &spec.edge.retry, encoding, false)
            .expect("loopback handshake");
        assert_eq!(
            remote.encoding(),
            encoding,
            "cloud must grant the encoding this edge offered"
        );
        let report = run_device_session(&remote, spec, 0);
        remote.close();
        let stats = server.join().expect("serve thread");
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.aborted, 0);
        (report, stats.cloud)
    })
}

/// [`run_tcp_single_as`] with the default JSON codec.
fn run_tcp_single(spec: &DeploymentSpec) -> (SessionReport, CloudStats) {
    run_tcp_single_as(spec, Encoding::Json)
}

/// The same session driven through the historical in-process channel path
/// (`CloudServer::spawn` + `connect`) — the reference the transports must
/// reproduce bit for bit.
fn run_channel_single(spec: &DeploymentSpec) -> (SessionReport, CloudStats) {
    assert_eq!(spec.total_sessions(), 1);
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let mut cloud = CloudServer::spawn(spec.cloud.build(), big);
    let small = spec.split.small_model();
    let (_, policy) = spec.edge.policy.build();
    let mut sess = cloud.connect(spec.session_config(0), &small, policy);
    let data = spec.dataset(0);
    for scene in data.iter() {
        let ticket = sess.submit(scene);
        sess.poll(ticket).expect("frame resolves");
    }
    let report = sess.drain();
    drop(sess);
    (report, cloud.shutdown())
}

/// Loopback TCP must match the channel path across the configuration
/// surface: policies, deadlines, traced links, admission control and
/// non-FIFO scheduling.
#[test]
fn tcp_sessions_match_channel_path_across_configs() {
    let base = small_fleet(1, 10);
    let variants: Vec<(&str, DeploymentSpec)> = vec![
        ("discriminator", base.clone()),
        (
            "cloud-only",
            DeploymentSpec {
                edge: EdgeSpec {
                    policy: PolicySpec::CloudOnly,
                    ..base.edge.clone()
                },
                ..base.clone()
            },
        ),
        (
            "edge-only",
            DeploymentSpec {
                edge: EdgeSpec {
                    policy: PolicySpec::EdgeOnly,
                    ..base.edge.clone()
                },
                ..base.clone()
            },
        ),
        (
            "deadline",
            DeploymentSpec {
                edge: EdgeSpec {
                    deadline_s: Some(0.12),
                    ..base.edge.clone()
                },
                ..base.clone()
            },
        ),
        (
            "bursty-trace",
            DeploymentSpec {
                edge: EdgeSpec {
                    policy: PolicySpec::CloudOnly,
                    link: LinkSpec::Cellular,
                    trace: TraceSpec::Bursty { seed: 7 },
                    ..base.edge.clone()
                },
                ..base.clone()
            },
        ),
        (
            "admission",
            DeploymentSpec {
                cloud: CloudSpec {
                    queue_limit: Some(2),
                    ..base.cloud.clone()
                },
                edge: EdgeSpec {
                    policy: PolicySpec::CloudOnly,
                    ..base.edge.clone()
                },
                ..base.clone()
            },
        ),
        (
            "deadline-scheduler",
            DeploymentSpec {
                cloud: CloudSpec {
                    max_batch: 3,
                    workers: 2,
                    scheduler: SchedulerConfig::DeadlineAware { lookahead: 4 },
                    ..base.cloud.clone()
                },
                edge: EdgeSpec {
                    deadline_s: Some(0.2),
                    ..base.edge.clone()
                },
                ..base.clone()
            },
        ),
    ];
    for (name, spec) in variants {
        let (want, want_stats) = run_channel_single(&spec);
        let (got, got_stats) = run_tcp_single(&spec);
        assert_eq!(got, want, "variant `{name}` diverged from channel path");
        assert_eq!(
            got_stats.served, want_stats.served,
            "variant `{name}` served a different frame count"
        );
    }
}

// ---------------------------------------------------------------------------
// Model-update loop over the wire
// ---------------------------------------------------------------------------

/// A fleet with the cloud's calibration-update loop switched on, paced so
/// the 30-frame sessions cross a couple of refit epochs mid-run.
fn update_fleet(edges: usize, frames: usize) -> DeploymentSpec {
    DeploymentSpec {
        cloud: CloudSpec {
            updates: Some(UpdateConfig {
                epoch_s: 0.1,
                min_examples: 6,
                ..UpdateConfig::default()
            }),
            ..CloudSpec::default()
        },
        ..small_fleet(edges, frames)
    }
}

/// Calibration updates ride the wire: a session over loopback TCP must
/// stash and apply the same artifacts at the same frames as the
/// historical channel path — the pushed `tag::UPDATE` frames are part of
/// the conformance surface, not an out-of-band extra.
#[test]
fn calibration_updates_over_tcp_match_channel_path() {
    let spec = update_fleet(1, 30);
    let (want, want_stats) = run_channel_single(&spec);
    let (got, got_stats) = run_tcp_single(&spec);
    assert!(
        want.updates_applied >= 1,
        "workload must actually exercise the update loop"
    );
    assert!(want.calibration_version >= 1);
    assert_eq!(got, want, "update-enabled TCP session diverged");
    assert_eq!(got_stats.updates_published, want_stats.updates_published);
    assert_eq!(
        got_stats.calibration_version,
        want_stats.calibration_version
    );
}

/// Fleet-wide rollout convergence: the serve path runs one cloud worker
/// (and hence one update publisher) per connection, so convergence means
/// every session ended on the newest version any publisher reached —
/// exactly what `DeploymentReport::calibration_converged` (and the
/// orchestrator's `--assert-converged`) checks across the merged report.
#[test]
fn fleet_calibration_rollout_converges_in_memory() {
    let spec = update_fleet(3, 30);
    let report = run_fleet_in_memory(&spec);
    let newest = report
        .calibration_converged()
        .unwrap_or_else(|laggards| panic!("sessions lagged the newest calibration: {laggards:?}"));
    assert!(newest >= 1, "at least one refit must have rolled out");
    // Per-connection publishers: each of the three sessions' clouds walks
    // the same deterministic epoch cadence, and the merged node stats sum
    // their publish counts.
    assert_eq!(
        report.cloud.cloud.updates_published,
        newest * report.sessions.len() as u64
    );
    for s in &report.sessions {
        assert!(
            s.updates_applied >= 1,
            "session {} never applied",
            s.session
        );
        assert_eq!(s.calibration_version, newest);
        assert_eq!(s.rollbacks, 0);
    }
}

// ---------------------------------------------------------------------------
// Process soak: kill an edge mid-run, restart it, account for everything
// ---------------------------------------------------------------------------

struct LineChild {
    child: Child,
    lines: std::sync::mpsc::Receiver<String>,
}

fn spawn_lines(mut cmd: Command) -> LineChild {
    let mut child = cmd
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn node binary");
    let out = child.stdout.take().expect("stdout piped");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(out).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    LineChild { child, lines: rx }
}

impl LineChild {
    fn expect_line_with(&self, prefix: &str, deadline: Instant) -> String {
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.lines.recv_timeout(left) {
                Ok(line) => {
                    if let Some(rest) = line.strip_prefix(prefix) {
                        return rest.to_string();
                    }
                }
                Err(e) => panic!("no `{prefix}` line before deadline: {e}"),
            }
        }
    }

    fn wait_success(&mut self, deadline: Instant, name: &str) {
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "{name} exited with {status}");
                return;
            }
            assert!(Instant::now() < deadline, "{name} hung past the deadline");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for LineChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Kill an edge-node mid-session and restart it: the cloud must record
/// exactly one aborted connection, accept the replacement, and the
/// surviving reports must be bit-identical to an undisturbed in-memory
/// fleet — all inside a bounded deadline.
#[test]
fn killed_edge_restarts_and_fleet_accounts_for_every_frame() {
    let deadline = Instant::now() + Duration::from_secs(120);
    let spec = small_fleet(2, 30);
    let reference = run_fleet_in_memory(&spec);
    let spec_json = serde_json::to_string(&spec).expect("spec serializes");

    // The cloud expects three registered connections: the doomed edge 0,
    // edge 1, and the restarted edge 0.
    let mut cloud = spawn_lines({
        let mut c = Command::new(CLOUD_BIN);
        c.args([
            "--listen",
            "127.0.0.1:0",
            "--spec",
            &spec_json,
            "--expect-sessions",
            "3",
        ])
        .stdin(Stdio::piped());
        c
    });
    let addr = cloud.expect_line_with("LISTENING ", deadline);

    let edge_cmd = |edge_index: &str| {
        let mut c = Command::new(EDGE_BIN);
        c.args([
            "--cloud",
            &addr,
            "--edge-index",
            edge_index,
            "--spec",
            &spec_json,
        ]);
        c
    };

    // Edge 0 gets a workload far too long to finish: we kill it mid-run.
    // Only flags (no --spec) so --frames takes effect; everything else
    // matches the spec's defaults.
    let mut doomed = spawn_lines({
        let mut c = Command::new(EDGE_BIN);
        c.args([
            "--cloud",
            &addr,
            "--edge-index",
            "0",
            "--edges",
            "2",
            "--frames",
            "20000",
        ]);
        c
    });
    doomed.expect_line_with(LINE_CONNECTED, deadline);
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        doomed.child.try_wait().expect("try_wait").is_none(),
        "doomed edge finished 20000 frames before the kill; raise the workload"
    );
    doomed.child.kill().expect("kill edge 0");
    let _ = doomed.child.wait();

    // Edge 1 runs the real workload to completion alongside the carnage.
    let mut survivor = spawn_lines(edge_cmd("1"));
    survivor.wait_success(deadline, "edge-node 1");
    let survivor_report: SessionReport =
        serde_json::from_str(&survivor.expect_line_with(LINE_REPORT, deadline))
            .expect("survivor report parses");

    // Restart edge 0 from scratch; the cloud must accept the reconnect.
    let mut restarted = spawn_lines(edge_cmd("0"));
    restarted.wait_success(deadline, "restarted edge-node 0");
    let restarted_report: SessionReport =
        serde_json::from_str(&restarted.expect_line_with(LINE_REPORT, deadline))
            .expect("restarted report parses");

    // The cloud stops on its own after the third registered connection.
    cloud.wait_success(deadline, "cloud-node");
    let stats: smallbig::core::transport::NodeStats =
        serde_json::from_str(&cloud.expect_line_with(LINE_STATS, deadline))
            .expect("cloud stats parse");

    assert_eq!(stats.connections, 3);
    assert_eq!(stats.aborted, 1, "exactly the killed edge must abort");
    assert_eq!(stats.refused, 0);
    assert_eq!(stats.hello_timeouts, 0);
    assert_eq!(restarted_report, reference.sessions[0]);
    assert_eq!(survivor_report, reference.sessions[1]);
    assert_eq!(
        restarted_report.frames + survivor_report.frames,
        reference.frames,
        "every frame of the undisturbed fleet is accounted for"
    );
}

// ---------------------------------------------------------------------------
// Mid-run reconnect through a cutting proxy
// ---------------------------------------------------------------------------

/// Forwards framed bytes client→server, severing both directions after
/// `cut_after` transport frames; later connections pass untouched.
fn cutting_proxy(backend: String, cut_after: usize) -> String {
    let front = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = front.local_addr().expect("proxy addr").to_string();
    std::thread::spawn(move || {
        let mut first = true;
        for conn in front.incoming() {
            let Ok(client) = conn else { break };
            let Ok(server) = TcpStream::connect(&backend) else {
                break;
            };
            let budget = if first { Some(cut_after) } else { None };
            first = false;
            let (c2s_c, c2s_s) = (
                client.try_clone().expect("clone"),
                server.try_clone().expect("clone"),
            );
            std::thread::spawn(move || copy_frames(c2s_c, c2s_s, budget));
            std::thread::spawn(move || copy_frames(server, client, None));
        }
    });
    addr
}

/// Copies length-prefixed transport frames from `from` to `to`; with a
/// budget, severs both sockets once it is spent.
fn copy_frames(mut from: TcpStream, mut to: TcpStream, mut budget: Option<usize>) {
    loop {
        let mut prefix = [0u8; 4];
        if from.read_exact(&mut prefix).is_err() {
            break;
        }
        let len = u32::from_le_bytes(prefix) as usize;
        let mut payload = vec![0u8; len];
        if from.read_exact(&mut payload).is_err() {
            break;
        }
        if to
            .write_all(&prefix)
            .and_then(|()| to.write_all(&payload))
            .is_err()
        {
            break;
        }
        if let Some(left) = budget.as_mut() {
            *left -= 1;
            if *left == 0 {
                let _ = from.shutdown(std::net::Shutdown::Both);
                let _ = to.shutdown(std::net::Shutdown::Both);
                break;
            }
        }
    }
}

/// A connection cut mid-session must reconnect with the configured
/// backoff, replay its registration and pending frames, and finish every
/// frame — while the cloud books one aborted and one clean connection.
#[test]
fn mid_run_cut_reconnects_and_completes_every_frame() {
    let spec = DeploymentSpec {
        edge: EdgeSpec {
            policy: PolicySpec::CloudOnly,
            retry: quick_retry(),
            ..EdgeSpec::default()
        },
        ..small_fleet(1, 12)
    };
    let mut listener = TcpWireListener::bind("127.0.0.1:0").expect("bind backend");
    let backend = listener.local_addr();
    // Frame 5 client→server is mid-stream: HELLO, REGISTER and the first
    // SUBMITs pass, then the line goes dark.
    let proxy = cutting_proxy(backend, 5);
    let cloud_cfg = spec.cloud.build();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let opts = ServeOptions {
        expect_sessions: Some(2),
        ..ServeOptions::default()
    };
    let (report, stats) = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let stop = AtomicBool::new(false);
            serve(&mut listener, &cloud_cfg, &big, &opts, &stop)
        });
        let remote =
            RemoteCloud::connect_tcp(&proxy, 0, &spec.edge.retry).expect("proxy handshake");
        let report = run_device_session(&remote, &spec, 0);
        remote.close();
        (report, server.join().expect("serve thread"))
    });
    assert_eq!(report.frames, 12);
    assert_eq!(report.uploads, 12, "cloud-only: every frame upstreams");
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.aborted, 1);
    assert!(
        stats.cloud.served >= 12,
        "replays may re-serve, but never under-serve"
    );
}

// ---------------------------------------------------------------------------
// Handshake failure modes over real TCP
// ---------------------------------------------------------------------------

/// A half-open connection (TCP established, no Hello) must time out on its
/// handler without stalling real sessions, and be booked as a hello
/// timeout.
#[test]
fn half_open_connection_times_out_without_blocking_serving() {
    let spec = small_fleet(1, 4);
    let mut listener = TcpWireListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr();
    let cloud_cfg = spec.cloud.build();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let opts = ServeOptions {
        hello_timeout: Duration::from_millis(100),
        expect_sessions: Some(1),
    };
    let stats = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let stop = AtomicBool::new(false);
            serve(&mut listener, &cloud_cfg, &big, &opts, &stop)
        });
        // Establish TCP and go silent; hold the socket open throughout.
        let half_open = TcpStream::connect(&addr).expect("raw connect");
        let remote = RemoteCloud::connect_tcp(&addr, 0, &spec.edge.retry)
            .expect("real session connects past the half-open peer");
        let report = run_device_session(&remote, &spec, 0);
        remote.close();
        assert_eq!(report.frames, 4);
        let stats = server.join().expect("serve thread");
        drop(half_open);
        stats
    });
    assert_eq!(stats.hello_timeouts, 1);
    // Only registered connections count; the half-open one never was.
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.aborted, 0);
    assert_eq!(stats.cloud.sessions, 1);
}

/// A protocol-version mismatch must surface as the typed
/// [`HandshakeError::VersionMismatch`] carrying both versions, and be
/// booked as refused on the serving side.
#[test]
fn version_mismatch_over_tcp_is_a_typed_error() {
    let spec = small_fleet(1, 1);
    let mut listener = TcpWireListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr();
    let cloud_cfg = spec.cloud.build();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let server = std::thread::spawn(move || {
        let conn = listener.accept().expect("accept");
        serve_connection(conn, &cloud_cfg, &big, &ServeOptions::default())
    });
    let transport = TcpTransport::dial(&addr).expect("dial");
    let (mut tx, mut rx) = (Box::new(transport) as Box<dyn Transport>).split();
    let hello = Hello {
        magic: HELLO_MAGIC,
        protocol: 999,
        session: 0,
        encoding: None,
        mux: None,
    };
    let err = client_handshake(&mut *tx, &mut *rx, &hello, Duration::from_secs(5))
        .expect_err("future protocol must be refused");
    match err {
        HandshakeError::VersionMismatch { server, client } => {
            assert_eq!(server, 1);
            assert_eq!(client, 999);
        }
        other => panic!("expected VersionMismatch, got {other}"),
    }
    let outcome = server.join().expect("handler thread");
    assert!(outcome.refused);
    assert!(!outcome.registered);
}

/// A silent server (TCP accepts, never answers the Hello) must produce a
/// bounded [`HandshakeError::Timeout`] on the client, not a hang.
#[test]
fn silent_server_times_out_the_client_handshake() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind silent server");
    let addr = listener.local_addr().expect("addr").to_string();
    let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
    let transport = TcpTransport::dial(&addr).expect("dial");
    let (mut tx, mut rx) = (Box::new(transport) as Box<dyn Transport>).split();
    let hello = Hello {
        magic: HELLO_MAGIC,
        protocol: 1,
        session: 0,
        encoding: None,
        mux: None,
    };
    let started = Instant::now();
    let err = client_handshake(&mut *tx, &mut *rx, &hello, Duration::from_millis(200))
        .expect_err("silence must time out");
    assert!(matches!(err, HandshakeError::Timeout));
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout must be bounded"
    );
    drop(hold.join());
}

// ---------------------------------------------------------------------------
// Encoding negotiation and the binary frame codec
// ---------------------------------------------------------------------------

/// The binary frame codec must be a pure wire optimization: sessions
/// negotiated to binary produce reports bit-identical to the in-process
/// channel path, across the policy surface.
#[test]
fn binary_codec_sessions_match_channel_path_bit_for_bit() {
    let base = small_fleet(1, 10);
    let variants: Vec<(&str, DeploymentSpec)> = vec![
        ("discriminator", base.clone()),
        (
            "cloud-only",
            DeploymentSpec {
                edge: EdgeSpec {
                    policy: PolicySpec::CloudOnly,
                    ..base.edge.clone()
                },
                ..base.clone()
            },
        ),
    ];
    for (name, spec) in variants {
        let (want, want_stats) = run_channel_single(&spec);
        let (got, got_stats) = run_tcp_single_as(&spec, Encoding::Binary);
        assert_eq!(got, want, "binary codec diverged on `{name}`");
        assert_eq!(
            got_stats.served, want_stats.served,
            "binary codec served a different frame count on `{name}`"
        );
    }
}

/// A pre-negotiation peer (its Hello carries no `encoding`/`mux` fields)
/// must still handshake: the cloud answers JSON and no mux.
#[test]
fn old_peer_hello_negotiates_json_and_no_mux() {
    let spec = small_fleet(1, 1);
    let mut listener = TcpWireListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr();
    let cloud_cfg = spec.cloud.build();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let server = std::thread::spawn(move || {
        let conn = listener.accept().expect("accept");
        serve_connection(conn, &cloud_cfg, &big, &ServeOptions::default())
    });
    let transport = TcpTransport::dial(&addr).expect("dial");
    let (mut tx, mut rx) = (Box::new(transport) as Box<dyn Transport>).split();
    let hello = Hello {
        magic: HELLO_MAGIC,
        protocol: 1,
        session: 0,
        encoding: None,
        mux: None,
    };
    let welcome = client_handshake(&mut *tx, &mut *rx, &hello, Duration::from_secs(5))
        .expect("an old peer must still handshake");
    assert_eq!(
        welcome.encoding.as_deref(),
        Some("json"),
        "cloud must fall back to JSON for a peer that offered nothing"
    );
    assert_eq!(welcome.mux, Some(false));
    drop(tx);
    drop(rx);
    let outcome = server.join().expect("handler thread");
    assert!(!outcome.refused);
    assert!(!outcome.registered);
}

/// A welcome naming an encoding the edge never offered (corrupted or
/// hostile negotiation field) must surface as the typed
/// [`HandshakeError::Encoding`] — never be guessed around.
#[test]
fn corrupted_encoding_in_welcome_is_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind hostile cloud");
    let addr = listener.local_addr().expect("addr").to_string();
    let hostile = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().expect("accept");
        // Swallow the HELLO: one outer length prefix plus payload.
        let mut prefix = [0u8; 4];
        sock.read_exact(&mut prefix).expect("hello prefix");
        let mut hello = vec![0u8; u32::from_le_bytes(prefix) as usize];
        sock.read_exact(&mut hello).expect("hello payload");
        // Reply WELCOME (tag 2) naming an encoding nobody offered.
        let welcome = Welcome {
            protocol: 1,
            session: 0,
            admission: false,
            encoding: Some("zstd".to_string()),
            mux: Some(false),
        };
        let mut payload = vec![2u8];
        payload.extend_from_slice(&encode_frame(&welcome));
        let len = u32::try_from(payload.len()).expect("small frame");
        sock.write_all(&len.to_le_bytes()).expect("welcome prefix");
        sock.write_all(&payload).expect("welcome payload");
        sock
    });
    let Err(err) = RemoteCloud::connect_tcp_with(&addr, 0, &quick_retry(), Encoding::Binary, false)
    else {
        panic!("hostile negotiation must fail typed");
    };
    match err {
        HandshakeError::Encoding { detail } => assert!(
            detail.contains("zstd"),
            "detail must name the bogus encoding: {detail}"
        ),
        other => panic!("expected HandshakeError::Encoding, got {other}"),
    }
    drop(hostile.join());
}

/// A mixed fleet — one edge on JSON, one on the binary codec, same cloud —
/// must produce per-session reports bit-identical to the in-memory
/// reference: the codec is invisible above the wire.
#[test]
fn mixed_encoding_fleet_matches_in_memory_reference() {
    let deadline = Instant::now() + Duration::from_secs(120);
    let spec = small_fleet(2, 6);
    let reference = run_fleet_in_memory(&spec);
    let spec_for = |encoding: Encoding| {
        serde_json::to_string(&DeploymentSpec {
            edge: EdgeSpec {
                encoding: Some(encoding),
                ..spec.edge.clone()
            },
            ..spec.clone()
        })
        .expect("spec serializes")
    };

    let mut cloud = spawn_lines({
        let mut c = Command::new(CLOUD_BIN);
        c.args([
            "--listen",
            "127.0.0.1:0",
            "--spec",
            &spec_for(Encoding::Json),
            "--expect-sessions",
            "2",
        ])
        .stdin(Stdio::piped());
        c
    });
    let addr = cloud.expect_line_with("LISTENING ", deadline);

    let mut edges = Vec::new();
    for (edge_index, encoding) in [(0usize, Encoding::Json), (1, Encoding::Binary)] {
        edges.push(spawn_lines({
            let mut c = Command::new(EDGE_BIN);
            c.args([
                "--cloud",
                &addr,
                "--edge-index",
                &edge_index.to_string(),
                "--spec",
                &spec_for(encoding),
            ]);
            c
        }));
    }
    for (i, edge) in edges.iter_mut().enumerate() {
        edge.wait_success(deadline, &format!("edge-node {i}"));
        let report: SessionReport =
            serde_json::from_str(&edge.expect_line_with(LINE_REPORT, deadline))
                .expect("edge report parses");
        assert_eq!(
            report, reference.sessions[i],
            "edge {i} diverged from the in-memory reference"
        );
    }
    cloud.wait_success(deadline, "cloud-node");
    let stats: smallbig::core::transport::NodeStats =
        serde_json::from_str(&cloud.expect_line_with(LINE_STATS, deadline))
            .expect("cloud stats parse");
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.refused, 0);
    assert_eq!(stats.aborted, 0);
    assert_eq!(stats.cloud.sessions, 2);
}

// ---------------------------------------------------------------------------
// Session multiplexing
// ---------------------------------------------------------------------------

/// Multiplexed edges (every device's session interleaved over one
/// connection, here also on the binary codec) must produce a fleet report
/// bit-identical to the in-memory reference, which always dials one
/// connection per device.
#[test]
fn mux_process_fleet_matches_in_memory_fleet_bit_for_bit() {
    let spec = DeploymentSpec {
        edges: 2,
        devices_per_edge: 3,
        frames_per_device: 4,
        edge: EdgeSpec {
            retry: quick_retry(),
            encoding: Some(Encoding::Binary),
            mux: Some(true),
            ..EdgeSpec::default()
        },
        ..DeploymentSpec::default()
    };
    let reference = run_fleet_in_memory(&spec);
    let processes = run_fleet_processes(
        &spec,
        Path::new(CLOUD_BIN),
        Path::new(EDGE_BIN),
        Duration::from_secs(120),
    )
    .expect("mux process fleet completes");

    assert_eq!(processes.sessions, reference.sessions);
    assert_eq!(processes.frames, reference.frames);
    assert_eq!(processes.uploads, reference.uploads);
    assert_eq!(processes.uplink_bytes, reference.uplink_bytes);
    assert_eq!(
        processes.cloud.connections, 2,
        "one connection per edge, not per device"
    );
    assert_eq!(processes.cloud.aborted, 0);
    assert_eq!(processes.cloud.refused, 0);
    assert_eq!(processes.cloud.cloud.sessions, 6);
    let ids: Vec<u64> = processes.sessions.iter().map(|s| s.session).collect();
    assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
}

// ---------------------------------------------------------------------------
// Bounded backpressure
// ---------------------------------------------------------------------------

/// With its peer stalled, a transport sender must wedge at the bounded
/// frame queue ([`FRAME_QUEUE_CAP`]) instead of buffering without limit —
/// and once the reader resumes, every frame arrives in order.
#[test]
fn stalled_reader_bounds_in_flight_frames_then_drains() {
    let (a, b) = memory_pair();
    let (mut tx, _a_rx) = (Box::new(a) as Box<dyn Transport>).split();
    let (_b_tx, mut rx) = (Box::new(b) as Box<dyn Transport>).split();
    const TOTAL: usize = 10 * FRAME_QUEUE_CAP;
    let sent = Arc::new(AtomicUsize::new(0));
    let progress = Arc::clone(&sent);
    let flooder = std::thread::spawn(move || {
        for i in 0..TOTAL {
            let frame = u32::try_from(i).expect("small index").to_le_bytes();
            tx.send(&frame).expect("receiver stays alive");
            progress.fetch_add(1, Ordering::SeqCst);
        }
    });
    // Nobody reads: the flood must stall at the queue bound.
    std::thread::sleep(Duration::from_millis(300));
    let in_flight = sent.load(Ordering::SeqCst);
    assert!(
        in_flight <= FRAME_QUEUE_CAP + 1,
        "sender ran {in_flight} frames ahead of a stalled reader (cap {FRAME_QUEUE_CAP})"
    );
    assert!(
        in_flight >= FRAME_QUEUE_CAP / 2,
        "sender should at least make progress up to the bound, sent {in_flight}"
    );
    // Resume reading: the sender unblocks and nothing is lost or reordered.
    for i in 0..TOTAL {
        let frame = rx.recv().expect("recv").expect("stream open");
        let want = u32::try_from(i).expect("small index").to_le_bytes();
        assert_eq!(&frame[..], &want[..], "frame {i} out of order");
    }
    flooder.join().expect("flooder thread");
}

/// Forwards framed bytes `from` → `to`, freezing once for `stall` after
/// `stall_after` frames — a slow consumer, not a cut.
fn copy_frames_stalling(
    mut from: TcpStream,
    mut to: TcpStream,
    stall_after: usize,
    stall: Duration,
) {
    let mut forwarded = 0usize;
    loop {
        let mut prefix = [0u8; 4];
        if from.read_exact(&mut prefix).is_err() {
            break;
        }
        let len = u32::from_le_bytes(prefix) as usize;
        let mut payload = vec![0u8; len];
        if from.read_exact(&mut payload).is_err() {
            break;
        }
        if to
            .write_all(&prefix)
            .and_then(|()| to.write_all(&payload))
            .is_err()
        {
            break;
        }
        forwarded += 1;
        if forwarded == stall_after {
            std::thread::sleep(stall);
        }
    }
}

/// A slow consumer mid-session (the proxy freezes the client→server
/// direction for 400 ms) must backpressure the edge — bounded buffering,
/// no reconnect, no loss — and the final report stays bit-identical to
/// the channel path.
#[test]
fn slow_consumer_stall_backpressures_without_losing_frames() {
    let spec = DeploymentSpec {
        edge: EdgeSpec {
            policy: PolicySpec::CloudOnly,
            retry: quick_retry(),
            ..EdgeSpec::default()
        },
        ..small_fleet(1, 12)
    };
    let (want, _) = run_channel_single(&spec);
    let mut listener = TcpWireListener::bind("127.0.0.1:0").expect("bind backend");
    let backend = listener.local_addr();
    let front = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let proxy = front.local_addr().expect("proxy addr").to_string();
    std::thread::spawn(move || {
        for conn in front.incoming() {
            let Ok(client) = conn else { break };
            let Ok(server) = TcpStream::connect(&backend) else {
                break;
            };
            let (c2s_c, c2s_s) = (
                client.try_clone().expect("clone"),
                server.try_clone().expect("clone"),
            );
            std::thread::spawn(move || {
                copy_frames_stalling(c2s_c, c2s_s, 5, Duration::from_millis(400))
            });
            std::thread::spawn(move || copy_frames(server, client, None));
        }
    });
    let cloud_cfg = spec.cloud.build();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let opts = ServeOptions {
        expect_sessions: Some(1),
        ..ServeOptions::default()
    };
    let (report, stats) = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let stop = AtomicBool::new(false);
            serve(&mut listener, &cloud_cfg, &big, &opts, &stop)
        });
        let remote =
            RemoteCloud::connect_tcp_with(&proxy, 0, &spec.edge.retry, Encoding::Binary, false)
                .expect("proxy handshake");
        let report = run_device_session(&remote, &spec, 0);
        remote.close();
        (report, server.join().expect("serve thread"))
    });
    assert_eq!(report, want, "stalled wire must not change the report");
    assert_eq!(stats.connections, 1, "a stall is not a cut: no reconnect");
    assert_eq!(stats.aborted, 0);
}

/// `dial_with_backoff` must keep retrying while the listener is still
/// coming up, and fail loudly (not hang) when nothing ever binds.
#[test]
fn dial_with_backoff_rides_out_a_late_listener() {
    // Reserve a port, free it, and bind it again only after a delay.
    let placeholder = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = placeholder.local_addr().expect("addr").to_string();
    drop(placeholder);
    let late_addr = addr.clone();
    let late = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        let listener = TcpListener::bind(&late_addr).expect("late bind");
        listener.accept().map(|(s, _)| s)
    });
    let transport = TcpTransport::dial_with_backoff(&addr, &quick_retry())
        .expect("backoff outlasts the late bind");
    drop(transport);
    drop(late.join());

    // And with nothing listening, retries exhaust into an error.
    let empty = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let dead_addr = empty.local_addr().expect("addr").to_string();
    drop(empty);
    let result = TcpTransport::dial_with_backoff(
        &dead_addr,
        &RetryConfig {
            base_s: 0.02,
            multiplier: 1.5,
            max_retries: 2,
        },
    );
    assert!(result.is_err(), "nothing ever binds, so dialing must fail");
}
