//! The paper's specific numeric claims, checked as executable assertions
//! (with tolerance for the reduced test scale).

use smallbig::modelzoo::{self, num_default_boxes, small_model_feature_maps, ssd300_feature_maps};
use smallbig::prelude::*;

#[test]
fn default_box_arithmetic_is_exact() {
    // Sec. IV-B: SSD has 8732 default boxes; the 38x38 map provides 5776;
    // dropping it loses 66% of the boxes.
    let full = ssd300_feature_maps();
    let small = small_model_feature_maps();
    assert_eq!(num_default_boxes(&full), 8732);
    assert_eq!(num_default_boxes(&small), 2956);
    let lost: f64 = 5776.0 / 8732.0;
    assert!((lost - 0.66).abs() < 0.01);
}

#[test]
fn table2_model_budget_claims() {
    // "All the small models are lightweight models with pruned above 80%."
    let big = modelzoo::ssd300_vgg16(20);
    assert!((big.size_mb() - 100.28).abs() < 2.0);
    for net in [
        modelzoo::vgg_lite_ssd(20),
        modelzoo::mobilenet_v1_ssd_paper(20),
        modelzoo::mobilenet_v2_ssd_paper(20),
    ] {
        assert!(net.pruned_percent_vs(&big) > 80.0, "{}", net.name());
    }
    // Size ordering matches Table II: small3 < small2 < small1 < SSD.
    let s1 = modelzoo::vgg_lite_ssd(20).size_mb();
    let s2 = modelzoo::mobilenet_v1_ssd_paper(20).size_mb();
    let s3 = modelzoo::mobilenet_v2_ssd_paper(20).size_mb();
    assert!(s3 < s2 && s2 < s1 && s1 < big.size_mb());
}

#[test]
fn partition_motivation_claim() {
    // Sec. II-C: "the amount of intermediate data for object detection is
    // quite large, even larger than the image itself".
    let net = modelzoo::ssd300_vgg16(20);
    let analysis = modelzoo::PartitionAnalysis::of(&net);
    let typical_image_bytes = 60_000;
    let worse = analysis.splits_larger_than_image(typical_image_bytes);
    assert!(
        worse * 2 > analysis.splits.len(),
        "most split points must ship more than the image"
    );
}

#[test]
fn fig4_structure_difficult_cases_cluster() {
    // Fig. 4: difficult cases are concentrated at many objects / small
    // minimum object area; easy cases at few objects / large areas.
    let split = Split::load_scaled(SplitId::Voc0712, 0.02);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc0712, 20);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc0712, 20);
    let examples = smallbig::core::label_dataset(&split.train, &small, &big, 0.2);

    let rate = |pred: &dyn Fn(&smallbig::core::LabeledExample) -> bool| -> f64 {
        let matching: Vec<_> = examples.iter().filter(|e| pred(e)).collect();
        assert!(!matching.is_empty());
        matching.iter().filter(|e| e.label.is_difficult()).count() as f64 / matching.len() as f64
    };
    let crowded = rate(&|e| e.true_count >= 5);
    let sparse_large = rate(&|e| e.true_count <= 2 && e.true_min_area.unwrap_or(0.0) >= 0.31);
    assert!(
        crowded > 0.85,
        "crowded images should almost all be difficult: {crowded}"
    );
    assert!(
        sparse_large < 0.25,
        "large sparse images should be easy: {sparse_large}"
    );
}

#[test]
fn discriminator_quality_claims() {
    // Table I bands, with slack for the reduced scale.
    let split = Split::load_scaled(SplitId::Voc0712, 0.03);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc0712, 20);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc0712, 20);
    let (cal, _) = calibrate(&split.train, &small, &big);
    assert!(
        cal.train_stats.accuracy > 0.72,
        "train accuracy {}",
        cal.train_stats.accuracy
    );
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);
    let test = smallbig::core::discriminator_test_stats(&split.test, &small, &big, &disc);
    assert!(test.accuracy > 0.60, "test accuracy {}", test.accuracy);
    assert!(test.recall > 0.60, "test recall {}", test.recall);
}

#[test]
fn bandwidth_savings_claim() {
    // Abstract: "detect 94.01%-97.84% of objects with only about 50% images
    // uploaded" — at reduced scale we accept >= 85% at <= 70% upload.
    let split = Split::load_scaled(SplitId::Voc07, 0.02);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
    let (cal, _) = calibrate(&split.train, &small, &big);
    let out = evaluate(
        &split.test,
        &small,
        &big,
        &Policy::DifficultCase(DifficultCaseDiscriminator::new(cal.thresholds)),
        &EvalConfig::default(),
    );
    assert!(out.upload_ratio < 0.70);
    assert!(out.e2e_detected_vs_big_pct() > 85.0);
}

#[test]
fn brenner_gradient_matches_eq2_definition() {
    // Eq. 2 sanity on a hand image (also covered in imaging's unit tests;
    // this asserts the cross-crate export is the same function).
    let img = smallbig::imaging::GrayImage::from_pixels(5, 1, vec![0, 0, 10, 0, 20]);
    let b = smallbig::imaging::brenner_gradient(&img);
    assert!((b - 200.0 / 3.0).abs() < 1e-9);
}
