//! Cross-crate integration: the full pipeline from dataset generation through
//! calibration, batch evaluation and the live runtime.

use smallbig::core::difficult_fraction;
use smallbig::prelude::*;

const SCALE: f64 = 0.02;

fn voc_setup() -> (Split, SimDetector, SimDetector) {
    let split = Split::load_scaled(SplitId::Voc0712, SCALE);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc0712, 20);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc0712, 20);
    (split, small, big)
}

#[test]
fn calibration_lands_in_paper_bands() {
    let (split, small, big) = voc_setup();
    let (cal, examples) = calibrate(&split.train, &small, &big);
    // The paper's conf band is 0.15-0.35; count optimum 2; some area > 0.
    assert!(
        (0.10..=0.40).contains(&cal.thresholds.conf),
        "conf {}",
        cal.thresholds.conf
    );
    assert!((1..=5).contains(&cal.thresholds.count));
    assert!(cal.thresholds.area > 0.0);
    // Roughly half the training images are difficult for the small model.
    let frac = difficult_fraction(&examples);
    assert!((0.30..=0.65).contains(&frac), "difficult fraction {frac}");
    // Grid accuracy beats the trivial majority classifier.
    assert!(cal.train_stats.accuracy > frac.max(1.0 - frac));
}

#[test]
fn small_big_system_matches_headline_claims() {
    let (split, small, big) = voc_setup();
    let (cal, _) = calibrate(&split.train, &small, &big);
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);
    let cfg = EvalConfig::default();
    let ours = evaluate(
        &split.test,
        &small,
        &big,
        &Policy::DifficultCase(disc),
        &cfg,
    );
    // Upload about half the images…
    assert!(
        (0.35..=0.70).contains(&ours.upload_ratio),
        "upload {}",
        ours.upload_ratio
    );
    // …reach most of the big model's mAP…
    assert!(
        ours.e2e_map_vs_big_pct() > 88.0,
        "e2e/big mAP {}",
        ours.e2e_map_vs_big_pct()
    );
    // …and most of its detections (the paper's 94% claim, with slack for
    // the reduced scale).
    assert!(
        ours.e2e_detected_vs_big_pct() > 85.0,
        "e2e/big dets {}",
        ours.e2e_detected_vs_big_pct()
    );
}

#[test]
fn our_method_beats_every_baseline_at_matched_ratio() {
    let (split, small, big) = voc_setup();
    let (cal, _) = calibrate(&split.train, &small, &big);
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);
    let cfg = EvalConfig::default();
    let ours = evaluate(
        &split.test,
        &small,
        &big,
        &Policy::DifficultCase(disc),
        &cfg,
    );
    let q = ours.upload_ratio;
    for baseline in [
        Policy::Random {
            upload_fraction: q,
            seed: 7,
        },
        Policy::BlurQuantile {
            upload_fraction: q,
            render_size: (64, 48),
        },
        Policy::Top1Quantile { upload_fraction: q },
    ] {
        let base = evaluate(&split.test, &small, &big, &baseline, &cfg);
        assert!(
            ours.e2e_map_pct > base.e2e_map_pct,
            "{}: ours {} vs baseline {}",
            baseline.name(),
            ours.e2e_map_pct,
            base.e2e_map_pct
        );
        assert!(
            ours.e2e_detected >= base.e2e_detected,
            "{}: detected",
            baseline.name()
        );
    }
}

#[test]
fn yolo_pair_needs_fewer_uploads_than_ssd_pair() {
    // Needs a slightly larger sample: calibration is noisy below ~200
    // training images.
    let scale = 0.06;
    let split = Split::load_scaled(SplitId::Voc07, scale);
    let cfg = EvalConfig::default();

    let ssd_small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
    let ssd_big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
    let (cal, _) = calibrate(&split.train, &ssd_small, &ssd_big);
    let ssd = evaluate(
        &split.test,
        &ssd_small,
        &ssd_big,
        &Policy::DifficultCase(DifficultCaseDiscriminator::new(cal.thresholds)),
        &cfg,
    );

    let y_small = SimDetector::new(ModelKind::YoloMobileNetV1, SplitId::Voc07, 20);
    let y_big = SimDetector::new(ModelKind::YoloV4, SplitId::Voc07, 20);
    let (cal, _) = calibrate(&split.train, &y_small, &y_big);
    let yolo = evaluate(
        &split.test,
        &y_small,
        &y_big,
        &Policy::DifficultCase(DifficultCaseDiscriminator::new(cal.thresholds)),
        &cfg,
    );

    // Sec. VI-C: the stronger YOLO pair produces far fewer difficult cases.
    assert!(
        yolo.upload_ratio < ssd.upload_ratio - 0.1,
        "yolo {} vs ssd {}",
        yolo.upload_ratio,
        ssd.upload_ratio
    );
}

#[test]
fn runtime_agrees_with_batch_evaluator() {
    let split = Split::load_scaled(SplitId::Helmet, 0.05);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    let (cal, _) = calibrate(&split.train, &small, &big);
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);

    let rt = RuntimeConfig {
        frame_size: (96, 96),
        ..Default::default()
    };
    let live = run_system(&split.test, &small, &big, &disc, RuntimeMode::SmallBig, &rt);
    let batch = evaluate(
        &split.test,
        &small,
        &big,
        &Policy::DifficultCase(disc),
        &EvalConfig::default(),
    );
    assert!((live.map_pct - batch.e2e_map_pct).abs() < 1e-9);
    assert_eq!(live.detected, batch.e2e_detected);
    assert!((live.upload_ratio - batch.upload_ratio).abs() < 1e-9);
}

#[test]
fn table_xi_time_ordering_holds() {
    let split = Split::load_scaled(SplitId::Helmet, 0.05);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    let (cal, _) = calibrate(&split.train, &small, &big);
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);
    let rt = RuntimeConfig::default(); // paper-realistic 300x300 frames
    let edge = run_system(&split.test, &small, &big, &disc, RuntimeMode::EdgeOnly, &rt);
    let ours = run_system(&split.test, &small, &big, &disc, RuntimeMode::SmallBig, &rt);
    let cloud = run_system(
        &split.test,
        &small,
        &big,
        &disc,
        RuntimeMode::CloudOnly,
        &rt,
    );
    assert!(edge.total_time_s < ours.total_time_s);
    assert!(ours.total_time_s < cloud.total_time_s);
    assert!(edge.map_pct <= ours.map_pct);
    assert!(ours.map_pct <= cloud.map_pct + 1e-9);
    assert!(edge.detected <= ours.detected);
    assert!(ours.detected <= cloud.detected);
}
