//! Scenario conformance suite for the degraded-network simulation.
//!
//! Every scenario here is a pure function of its seeds: traces are
//! piecewise schedules over virtual time, stochastic constructors expand at
//! construction from their own RNG streams, and the session layer drives
//! retransmissions against per-session virtual clocks. The golden tests pin
//! fixed-seed [`RuntimeReport`]s — integer fields exactly, float aggregates
//! to a 1e-9 relative tolerance (libm last-bit portability) — so any drift
//! in trace semantics, retry accounting or scheduler behaviour
//! fails loudly; the determinism tests re-run each scenario and require
//! bit-identical reports; the total-outage test asserts the advertised
//! fallback contract (every frame served edge-only, zero cloud latency);
//! and the shutdown soak drains in-flight retransmitting sessions across
//! worker-pool sizes under a wall-clock bound.

use smallbig::core::{
    run_system, CloudConfig, CloudServer, DifficultCaseDiscriminator, Policy, RuntimeConfig,
    RuntimeMode, RuntimeReport, SessionConfig, Thresholds,
};
use smallbig::prelude::*;
use smallbig::simnet::{FaultPlan, LinkTrace};
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> (Dataset, SimDetector, SimDetector) {
    let test = Dataset::generate("degraded", &DatasetProfile::helmet(), 40, 9);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    (test, small, big)
}

fn disc() -> DifficultCaseDiscriminator {
    DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.21,
        count: 4,
        area: 0.03,
    })
}

fn traced_cfg(trace: LinkTrace) -> RuntimeConfig {
    RuntimeConfig {
        frame_size: (96, 96),
        link_trace: Some(trace),
        ..Default::default()
    }
}

/// The three pinned scenarios: a mid-run outage, Gilbert–Elliott bursty
/// loss, and a diurnal capacity ramp — all over the paper's WLAN.
fn scenarios() -> [(&'static str, LinkTrace); 3] {
    [
        ("outage", LinkTrace::step_outage(2.0, 2.5)),
        ("bursty", LinkTrace::bursty(11, 120.0, 3.0, 1.5, 0.9)),
        ("ramp", LinkTrace::diurnal_ramp(10.0, 0.15, 8, 4)),
    ]
}

fn run_scenario(trace: LinkTrace) -> RuntimeReport {
    let (test, small, big) = fixture();
    run_system(
        &test,
        &small,
        &big,
        &disc(),
        RuntimeMode::SmallBig,
        &traced_cfg(trace),
    )
}

/// Fixed-seed golden reports for the three pinned trace scenarios. The
/// expectations are exact: virtual time and seeded RNG streams make every
/// field reproducible to the bit, so these constants are the conformance
/// contract for the trace/retry/fault semantics.
#[test]
fn golden_reports_for_pinned_scenarios() {
    struct Golden {
        name: &'static str,
        map_pct: f64,
        detected: usize,
        total_gt: usize,
        total_time_s: f64,
        upload_ratio: f64,
        uplink_bytes: u64,
        deadline_misses: usize,
        link_fallbacks: usize,
        retransmit_s: f64,
    }
    // Regenerate by printing each scenario's report with `{:?}` formatting
    // (f64 `{:?}` round-trips exactly). Integer fields and `upload_ratio`
    // (an exact rational) are pinned exactly; the float aggregates flow
    // through `ln`/`exp`/`cos` (jitter sampling, trace constructors),
    // whose last bits Rust does not guarantee across libm versions, so
    // they are pinned to a 1e-9 relative tolerance — tight enough that
    // any semantic drift (a changed draw, a different retry, a shifted
    // segment) still fails by orders of magnitude.
    let goldens = [
        Golden {
            name: "outage",
            map_pct: 84.6256343337683,
            detected: 77,
            total_gt: 105,
            total_time_s: 9.078215158516038,
            upload_ratio: 0.45,
            uplink_bytes: 117137,
            deadline_misses: 0,
            link_fallbacks: 0,
            retransmit_s: 3.25,
        },
        Golden {
            name: "bursty",
            map_pct: 84.6256343337683,
            detected: 77,
            total_gt: 105,
            total_time_s: 10.714851916951243,
            upload_ratio: 0.45,
            uplink_bytes: 117137,
            deadline_misses: 0,
            link_fallbacks: 0,
            retransmit_s: 4.85,
        },
        Golden {
            name: "ramp",
            map_pct: 84.6256343337683,
            detected: 77,
            total_gt: 105,
            total_time_s: 7.102751959767199,
            upload_ratio: 0.45,
            uplink_bytes: 117137,
            deadline_misses: 0,
            link_fallbacks: 0,
            retransmit_s: 0.09999999999999981,
        },
    ];
    let by_name: std::collections::HashMap<&str, LinkTrace> = scenarios().into_iter().collect();
    let close = |got: f64, want: f64| (got - want).abs() <= want.abs() * 1e-9;
    for g in goldens {
        let r = run_scenario(by_name[g.name].clone());
        assert!(
            close(r.map_pct, g.map_pct),
            "{} map_pct: got {:?}, want {:?}",
            g.name,
            r.map_pct,
            g.map_pct
        );
        assert_eq!(r.detected, g.detected, "{} detected", g.name);
        assert_eq!(r.total_gt, g.total_gt, "{} total_gt", g.name);
        assert!(
            close(r.total_time_s, g.total_time_s),
            "{} total_time_s: got {:?}, want {:?}",
            g.name,
            r.total_time_s,
            g.total_time_s
        );
        assert_eq!(r.upload_ratio, g.upload_ratio, "{} upload_ratio", g.name);
        assert_eq!(r.uplink_bytes, g.uplink_bytes, "{} uplink_bytes", g.name);
        assert_eq!(
            r.deadline_misses, g.deadline_misses,
            "{} deadline_misses",
            g.name
        );
        assert_eq!(
            r.link_fallbacks, g.link_fallbacks,
            "{} link_fallbacks",
            g.name
        );
        assert!(
            close(r.latency.total.retransmit_s, g.retransmit_s),
            "{} retransmit_s: got {:?}, want {:?}",
            g.name,
            r.latency.total.retransmit_s,
            g.retransmit_s
        );
    }
}

/// Each pinned scenario replays bit-identically: two full runs produce
/// equal reports, field for field.
#[test]
fn scenarios_replay_deterministically() {
    for (name, trace) in scenarios() {
        let a = run_scenario(trace.clone());
        let b = run_scenario(trace);
        assert_eq!(a, b, "{name} must replay bit-identically");
    }
}

/// A constant identity trace changes *how* transfer times are drawn (the
/// edge drives them) but not what the system computes: routing decisions,
/// shipped bytes and served detections match the static link exactly.
#[test]
fn constant_trace_matches_static_link_semantics() {
    let (test, small, big) = fixture();
    let run = |trace: Option<LinkTrace>| {
        run_system(
            &test,
            &small,
            &big,
            &disc(),
            RuntimeMode::SmallBig,
            &RuntimeConfig {
                frame_size: (96, 96),
                link_trace: trace,
                ..Default::default()
            },
        )
    };
    let statically = run(None);
    let traced = run(Some(LinkTrace::constant()));
    assert_eq!(statically.upload_ratio, traced.upload_ratio);
    assert_eq!(statically.uplink_bytes, traced.uplink_bytes);
    assert_eq!(statically.detected, traced.detected);
    assert_eq!(statically.map_pct, traced.map_pct);
    assert_eq!(traced.link_fallbacks, 0);
    assert_eq!(traced.deadline_misses, 0);
    // Note: `retransmit_s` may be positive even at identity — the WLAN's
    // own 2 % loss shows up as explicit session-level retransmissions on a
    // traced link (the static path folds it into the transfer time
    // instead). Only a truly loss-free link makes it exactly zero:
    let lossless = RuntimeConfig {
        frame_size: (96, 96),
        link: LinkModel::new("clean", 1.3e6, 0.030, 0.25, 0.0),
        link_trace: Some(LinkTrace::constant()),
        ..Default::default()
    };
    let clean = run_system(
        &test,
        &small,
        &big,
        &disc(),
        RuntimeMode::SmallBig,
        &lossless,
    );
    assert_eq!(clean.latency.total.retransmit_s, 0.0);
    assert_eq!(clean.link_fallbacks, 0);
}

/// The advertised total-outage contract: with the link dark for the whole
/// run, every would-be upload falls back to the edge-only answer, nothing
/// is shipped, and the cloud contributes zero latency.
#[test]
fn total_outage_falls_back_to_edge_everywhere() {
    let (test, small, big) = fixture();
    let r = run_system(
        &test,
        &small,
        &big,
        &disc(),
        RuntimeMode::CloudOnly,
        &traced_cfg(LinkTrace::total_outage()),
    );
    assert_eq!(r.link_fallbacks, test.len(), "every frame gave up");
    assert_eq!(r.upload_ratio, 0.0, "nothing actually uploaded");
    assert_eq!(r.uplink_bytes, 0);
    assert_eq!(r.latency.total.uplink_s, 0.0, "zero cloud latency (uplink)");
    assert_eq!(
        r.latency.total.cloud_infer_s, 0.0,
        "zero cloud latency (infer)"
    );
    assert_eq!(
        r.latency.total.downlink_s, 0.0,
        "zero cloud latency (downlink)"
    );
    assert_eq!(r.latency.cloud_images, 0);
    assert!(
        r.latency.total.retransmit_s > 0.0,
        "the retries cost virtual time"
    );
    assert_eq!(r.deadline_misses, 0, "no deadline was configured");

    // The served results are exactly the edge-only pipeline's detections.
    let edge = run_system(
        &test,
        &small,
        &big,
        &disc(),
        RuntimeMode::EdgeOnly,
        &RuntimeConfig {
            frame_size: (96, 96),
            ..Default::default()
        },
    );
    assert_eq!(r.detected, edge.detected);
    assert_eq!(r.map_pct, edge.map_pct);
}

/// A short outage is *survivable*: exponential backoff carries the
/// retransmissions past the window, so every upload still completes and
/// quality matches the healthy link — only time is lost.
#[test]
fn short_outage_recovers_via_retransmission() {
    let healthy = run_scenario(LinkTrace::constant());
    let outage = run_scenario(LinkTrace::step_outage(2.0, 2.5));
    assert_eq!(outage.link_fallbacks, 0, "backoff outlasts the outage");
    assert_eq!(outage.upload_ratio, healthy.upload_ratio);
    assert_eq!(outage.uplink_bytes, healthy.uplink_bytes);
    assert_eq!(outage.detected, healthy.detected);
    assert_eq!(outage.map_pct, healthy.map_pct);
    assert!(
        outage.latency.total.retransmit_s > 0.0,
        "the outage cost retransmission time"
    );
    assert!(outage.total_time_s > healthy.total_time_s);
}

/// Under a deadline, an outage turns into bounded-latency fallbacks: the
/// edge gives up at the deadline instead of retrying past it, and those
/// frames are recorded as both deadline misses and link fallbacks.
#[test]
fn outage_with_deadline_bounds_latency() {
    let (test, small, big) = fixture();
    let r = run_system(
        &test,
        &small,
        &big,
        &disc(),
        RuntimeMode::CloudOnly,
        &RuntimeConfig {
            frame_size: (96, 96),
            link_trace: Some(LinkTrace::total_outage()),
            deadline_s: Some(0.5),
            ..Default::default()
        },
    );
    assert_eq!(r.link_fallbacks, test.len());
    assert_eq!(r.deadline_misses, test.len());
    assert!(
        r.latency.max_image_s <= 0.5 + 1e-9,
        "every frame resolved within its deadline: {}",
        r.latency.max_image_s
    );
}

/// Scheduled cloud stalls defer batches without changing what is computed:
/// same uploads, same detections, strictly more virtual time.
#[test]
fn cloud_stall_defers_but_preserves_results() {
    let (test, small, big) = fixture();
    let run = |faults: FaultPlan| {
        run_system(
            &test,
            &small,
            &big,
            &disc(),
            RuntimeMode::SmallBig,
            &RuntimeConfig {
                frame_size: (96, 96),
                faults,
                ..Default::default()
            },
        )
    };
    let clean = run(FaultPlan::new());
    let stalled = run(FaultPlan::new().with_stall(0.5, 30.0));
    assert_eq!(clean.upload_ratio, stalled.upload_ratio);
    assert_eq!(clean.detected, stalled.detected);
    assert!(
        stalled.total_time_s > clean.total_time_s,
        "a 30 s stall must cost virtual time: {} vs {}",
        stalled.total_time_s,
        clean.total_time_s
    );
    // Deterministic replay with faults in play.
    assert_eq!(stalled, run(FaultPlan::new().with_stall(0.5, 30.0)));
}

/// A per-session drop window blackholes transmissions deterministically:
/// the session retransmits (or falls back) and the run still replays
/// bit-identically.
#[test]
fn session_drop_windows_force_retransmission() {
    let (test, small, big) = fixture();
    let run = || {
        run_system(
            &test,
            &small,
            &big,
            &disc(),
            RuntimeMode::CloudOnly,
            &RuntimeConfig {
                frame_size: (96, 96),
                link_trace: Some(LinkTrace::constant()),
                faults: FaultPlan::new().with_session_drop(0, 0.0, 1.0),
                ..Default::default()
            },
        )
    };
    let r = run();
    assert!(
        r.latency.total.retransmit_s > 0.0 || r.link_fallbacks > 0,
        "the drop window must have been felt"
    );
    assert_eq!(r, run());
}

/// Shutdown soak: `CloudServer::shutdown` while sessions still have
/// in-flight frames on an outage-ridden traced link must drain without
/// panic or deadlock — across inference-pool sizes — inside a wall-clock
/// bound. The worker flushes every queued frame before exiting and the
/// sessions absorb the buffered answers (with traced downlinks that
/// themselves retransmit) afterwards.
#[test]
fn shutdown_mid_outage_drains_across_worker_pools() {
    for workers in [1usize, 2, 4] {
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let (test, small, big) = fixture();
            let big: Arc<dyn Detector + Send + Sync> = Arc::new(big);
            let mut cloud = CloudServer::spawn(
                CloudConfig {
                    workers,
                    max_batch: 3,
                    ..CloudConfig::default()
                },
                big,
            );
            let mut session = cloud.connect(
                SessionConfig {
                    frame_size: (96, 96),
                    link_trace: Some(LinkTrace::step_outage(0.5, 2.0)),
                    ..SessionConfig::new(2)
                },
                &small,
                Box::new(Policy::CloudOnly),
            );
            // Pile up in-flight frames (some retransmitted through the
            // outage) without polling any of them.
            for scene in test.iter() {
                session.submit(scene);
            }
            assert!(session.outstanding() > 0, "frames are in flight");
            // Shut the cloud down mid-stream: it must flush every queued
            // frame, and the session must drain from the buffered answers.
            let stats = cloud.shutdown();
            let report = session.drain();
            assert_eq!(session.outstanding(), 0);
            assert_eq!(stats.served, report.uploads);
            assert_eq!(report.frames, test.len());
            done_tx.send((workers, report)).expect("main thread alive");
        });
        let (w, report) = done_rx
            .recv_timeout(Duration::from_secs(60))
            .unwrap_or_else(|_| panic!("shutdown soak deadlocked with {workers} workers"));
        handle.join().expect("soak thread panicked");
        assert_eq!(w, workers);
        assert!(report.uploads > 0, "the outage ended; uploads flowed");
    }
}
