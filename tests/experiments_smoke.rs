//! Every experiment in the harness must run at reduced scale.

use smallbig::eval::{run_experiment, ExpConfig};

#[test]
fn every_table_and_figure_regenerates() {
    let cfg = ExpConfig::quick();
    for id in smallbig::eval::ALL_EXPERIMENTS {
        let reports =
            run_experiment(id, &cfg).unwrap_or_else(|e| panic!("experiment {id} failed: {e}"));
        assert_eq!(reports.len(), 1, "{id}");
        let text = reports[0].to_string();
        assert!(text.contains("## "), "{id} renders a title");
        assert!(reports[0].table.num_rows() > 0, "{id} has rows");
    }
}

#[test]
fn all_alias_runs_everything() {
    let cfg = ExpConfig::quick();
    let reports = run_experiment("all", &cfg).unwrap();
    assert_eq!(reports.len(), smallbig::eval::ALL_EXPERIMENTS.len());
}

#[test]
fn csv_export_shape() {
    let cfg = ExpConfig::quick();
    let reports = run_experiment("table2", &cfg).unwrap();
    let csv = reports[0].table.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 5, "header + four model rows");
    assert!(lines[0].contains("Model size"));
}
