//! Reproducibility guarantees: every published number must be regenerable
//! bit-for-bit from the seeds.

use smallbig::prelude::*;

#[test]
fn datasets_are_bit_identical_across_loads() {
    let a = Split::load_scaled(SplitId::Voc07, 0.01);
    let b = Split::load_scaled(SplitId::Voc07, 0.01);
    assert_eq!(a.train.scenes(), b.train.scenes());
    assert_eq!(a.test.scenes(), b.test.scenes());
}

#[test]
fn detectors_are_pure_functions_of_scene() {
    let split = Split::load_scaled(SplitId::Coco18, 0.002);
    let d1 = SimDetector::new(ModelKind::MobileNetV2Ssd, SplitId::Coco18, 18);
    let d2 = SimDetector::new(ModelKind::MobileNetV2Ssd, SplitId::Coco18, 18);
    for scene in split.test.iter() {
        assert_eq!(d1.detect(scene), d2.detect(scene));
    }
}

#[test]
fn full_evaluation_is_deterministic() {
    let run = || {
        let split = Split::load_scaled(SplitId::Voc07, 0.01);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        let (cal, _) = calibrate(&split.train, &small, &big);
        evaluate(
            &split.test,
            &small,
            &big,
            &Policy::DifficultCase(DifficultCaseDiscriminator::new(cal.thresholds)),
            &EvalConfig::default(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn runtime_is_deterministic_across_thread_schedules() {
    // The virtual-clock design must make results independent of actual
    // thread interleaving; run several times to shake out races.
    let split = Split::load_scaled(SplitId::Helmet, 0.03);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    let disc = DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.2,
        count: 3,
        area: 0.05,
    });
    let rt = RuntimeConfig {
        frame_size: (64, 64),
        ..Default::default()
    };
    let first = run_system(&split.test, &small, &big, &disc, RuntimeMode::SmallBig, &rt);
    for _ in 0..4 {
        let again = run_system(&split.test, &small, &big, &disc, RuntimeMode::SmallBig, &rt);
        assert_eq!(first, again);
    }
}

#[test]
fn seeds_actually_matter() {
    use smallbig::datagen::Dataset;
    let p = DatasetProfile::voc();
    let a = Dataset::generate("a", &p, 50, 1);
    let b = Dataset::generate("b", &p, 50, 2);
    assert_ne!(a.scenes(), b.scenes(), "different seeds differ");
}
