//! Conformance suite for the model-update loop (PR 10).
//!
//! Four contracts are pinned here:
//!
//! 1. **Golden trajectories.** An update-enabled run is a pure function of
//!    its seeds: refit versions, applies and rollback counters replay
//!    bit-identically, and the loop actually fires under a realistic
//!    drive.
//! 2. **Lost-update replay.** A session that uploads nothing while a refit
//!    publishes (an outage, a quiet camera) catches up on its next served
//!    frame — the cloud piggybacks the newest artifact immediately before
//!    the answer, so no separate reliability machinery is needed.
//! 3. **Rollback.** A divergence trip (probation upload fraction moving
//!    beyond the artifact's bound vs the pre-update holdout) restores the
//!    snapshot taken before the apply and reverts the active version —
//!    pinned end to end, not just at the state-machine level.
//! 4. **Disabled-path bit-identity.** `CloudConfig::updates: None` (the
//!    default) and an enabled loop that never accumulates enough examples
//!    both leave every report byte untouched — the update path costs
//!    nothing unless it actually fires (`tests/api_equivalence.rs`
//!    separately pins the default path against the seed implementation).

use datagen::{Dataset, DatasetProfile};
use modelzoo::{ModelKind, SimDetector};
use smallbig::core::{
    CloudConfig, CloudServer, CloudStats, DifficultCaseDiscriminator, Policy, SessionConfig,
    SessionReport, Thresholds, UpdateConfig,
};
use std::sync::Arc;

const NUM_CLASSES: usize = 2;

fn fixture(n: usize) -> Dataset {
    Dataset::generate("update-fixture", &DatasetProfile::helmet(), n, 9)
}

fn small() -> SimDetector {
    SimDetector::new(ModelKind::VggLiteSsd, datagen::SplitId::Helmet, NUM_CLASSES)
}

fn big() -> Arc<SimDetector> {
    Arc::new(SimDetector::new(
        ModelKind::SsdVgg16,
        datagen::SplitId::Helmet,
        NUM_CLASSES,
    ))
}

fn session_cfg() -> SessionConfig {
    SessionConfig {
        frame_size: (96, 96),
        ..SessionConfig::new(NUM_CLASSES)
    }
}

/// A discriminator that uploads essentially every helmet scene, keeping
/// the cloud's pseudo-label stream dense.
fn eager_disc() -> DifficultCaseDiscriminator {
    DifficultCaseDiscriminator::with_config(
        Thresholds {
            conf: 0.2,
            count: 1,
            area: 0.6,
        },
        Default::default(),
    )
}

/// Drives `frames` scenes through one update-enabled session, one frame
/// per virtual second, and returns its report plus the cloud stats.
fn drive_one(updates: Option<UpdateConfig>, frames: usize) -> (SessionReport, CloudStats) {
    let data = fixture(30);
    let small = small();
    let mut cloud = CloudServer::spawn(
        CloudConfig {
            updates,
            ..CloudConfig::default()
        },
        big(),
    );
    let mut sess = cloud.connect(
        session_cfg(),
        &small,
        Box::new(Policy::DifficultCase(eager_disc())),
    );
    for i in 0..frames {
        sess.advance_to(i as f64);
        let ticket = sess.submit(&data.scenes()[i % data.len()]);
        sess.poll(ticket).expect("frame resolves");
    }
    let report = sess.drain();
    drop(sess);
    (report, cloud.shutdown())
}

#[test]
fn update_loop_fires_and_replays_bit_identically() {
    let cfg = UpdateConfig {
        epoch_s: 8.0,
        min_examples: 6,
        holdout: 4,
        divergence: 1.0, // never roll back in this scenario
    };
    let (report, stats) = drive_one(Some(cfg), 48);
    assert!(
        stats.updates_published >= 2,
        "48 virtual seconds at epoch_s=8 must refit more than once, got {}",
        stats.updates_published
    );
    assert_eq!(stats.calibration_version, stats.updates_published);
    assert!(report.updates_applied >= 1, "the edge must adopt a refit");
    assert!(
        report.calibration_version >= 1,
        "a version must be active at drain"
    );
    assert_eq!(report.rollbacks, 0);
    assert!(report.uploads > 0);

    // Golden trajectory: the whole run — refit contents, push points,
    // applies — replays bit-for-bit from the same seeds.
    let (report2, stats2) = drive_one(Some(cfg), 48);
    assert_eq!(report, report2, "update-enabled runs must be deterministic");
    assert_eq!(stats, stats2);
}

#[test]
fn lost_update_replay_catches_a_quiet_session_up() {
    let data = fixture(30);
    let small = small();
    let mut cloud = CloudServer::spawn(
        CloudConfig {
            updates: Some(UpdateConfig {
                epoch_s: 8.0,
                min_examples: 6,
                holdout: 4,
                divergence: 1.0,
            }),
            ..CloudConfig::default()
        },
        big(),
    );
    let mut busy = cloud.connect(
        session_cfg(),
        &small,
        Box::new(Policy::DifficultCase(eager_disc())),
    );
    let mut quiet = cloud.connect(
        session_cfg(),
        &small,
        Box::new(Policy::DifficultCase(eager_disc())),
    );

    // The quiet session serves one early frame (no refit exists yet, so
    // nothing is pushed to it) and then goes dark.
    quiet.advance_to(0.0);
    let t = quiet.submit(&data.scenes()[0]);
    quiet.poll(t).expect("frame resolves");

    // The busy session's traffic drives several refits meanwhile.
    for i in 0..40 {
        busy.advance_to(i as f64);
        let t = busy.submit(&data.scenes()[i % data.len()]);
        busy.poll(t).expect("frame resolves");
    }

    // The quiet session wakes up: its first served frame's answer is
    // preceded by the *newest* artifact (intermediate versions were lost
    // to it and are never replayed — versions are cumulative), and the
    // frame after that applies it between frames.
    quiet.advance_to(41.0);
    let t = quiet.submit(&data.scenes()[1]);
    quiet.poll(t).expect("frame resolves");
    quiet.advance_to(42.0);
    let t = quiet.submit(&data.scenes()[2]);
    quiet.poll(t).expect("frame resolves");

    let busy_report = busy.drain();
    let quiet_report = quiet.drain();
    drop((busy, quiet));
    let stats = cloud.shutdown();

    assert!(stats.updates_published >= 2);
    assert!(busy_report.updates_applied >= 1);
    assert_eq!(
        quiet_report.updates_applied, 1,
        "the quiet session must apply exactly one catch-up artifact"
    );
    assert_eq!(
        quiet_report.calibration_version, stats.calibration_version,
        "one catch-up apply must land the quiet session on the newest version"
    );
}

#[test]
fn divergence_trips_a_pinned_rollback() {
    // A zero divergence bound makes any upload-fraction change between the
    // pre-update holdout and the probation window a trip. The eager
    // discriminator uploads everything (pre-fraction 1.0); the refit
    // learned from pseudo-labels is stricter, so probation diverges and
    // the edge must restore its snapshot and revert to version 0.
    let cfg = UpdateConfig {
        epoch_s: 8.0,
        min_examples: 6,
        holdout: 4,
        divergence: 0.0,
    };
    let (report, stats) = drive_one(Some(cfg), 48);
    assert!(stats.updates_published >= 1);
    assert!(
        report.rollbacks >= 1,
        "a zero divergence bound must trip at least once (applied {}, version {})",
        report.updates_applied,
        report.calibration_version
    );
    // Pinned end state: the trajectory replays bit-identically.
    let (report2, _) = drive_one(Some(cfg), 48);
    assert_eq!(report, report2);
}

#[test]
fn disabled_and_never_firing_update_loops_are_bit_identical() {
    // `updates: None` is the default; an enabled loop that never reaches
    // min_examples must not change a single byte either — no RNG draws,
    // no virtual time, no frames.
    let (none_report, none_stats) = drive_one(None, 32);
    let starved = UpdateConfig {
        min_examples: usize::MAX,
        ..UpdateConfig::default()
    };
    let (starved_report, starved_stats) = drive_one(Some(starved), 32);
    assert_eq!(none_report, starved_report);
    assert_eq!(none_stats.served, starved_stats.served);
    assert_eq!(none_stats.busy_s, starved_stats.busy_s);
    assert_eq!(starved_stats.updates_published, 0);
    assert_eq!(starved_report.calibration_version, 0);
    assert_eq!(starved_report.updates_applied, 0);
}
