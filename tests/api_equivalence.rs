//! API-redesign guarantees: the streaming session layer must reproduce the
//! legacy batch API exactly, and multi-edge runs must be deterministic.
//!
//! The strongest guard is [`legacy`]: a faithful transcription of the
//! *pre-redesign* `run_system` (the seed's single-purpose threaded loop,
//! deleted when the session layer replaced it). Comparing today's wrapper
//! against that reference is what makes "bit-for-bit identical reports"
//! a non-circular claim.

use smallbig::core::{
    run_system, CloudConfig, CloudServer, DifficultCaseDiscriminator, Policy, RuntimeConfig,
    RuntimeMode, SessionConfig, SessionReport, Thresholds,
};
use smallbig::prelude::*;
use std::sync::Arc;

/// The seed implementation of `run_system`, transcribed verbatim (modulo
/// visibility: `parking_lot::Mutex` → `std::sync::Mutex`, and the report is
/// a local struct because `RuntimeReport` is `#[non_exhaustive]`).
mod legacy {
    use crossbeam::channel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use serde::{Deserialize, Serialize};
    use smallbig::core::wire::{decode_frame, encode_frame};
    use smallbig::core::{CaseKind, DifficultCaseDiscriminator, RuntimeConfig, RuntimeMode};
    use smallbig::detcore::{count_detected, DatasetCounter, MapEvaluator};
    use smallbig::imaging::{encoded_size_bytes, render, result_size_bytes};
    use smallbig::prelude::*;
    use smallbig::simnet::{LatencyBreakdown, LatencyStats};
    use std::sync::{Arc, Mutex};
    use std::thread;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Report {
        pub map_pct: f64,
        pub detected: usize,
        pub total_gt: usize,
        pub total_time_s: f64,
        pub upload_ratio: f64,
        pub latency: LatencyStats,
        pub uplink_bytes: u64,
        pub deadline_misses: usize,
    }

    #[derive(Debug, Serialize, Deserialize)]
    struct UploadRequest {
        scene: Scene,
        frame_bytes: usize,
        sent_at: f64,
    }

    #[derive(Debug, Serialize, Deserialize)]
    struct UploadResponse {
        dets: smallbig::detcore::ImageDetections,
        sent_at: f64,
        infer_s: f64,
        uplink_s: f64,
    }

    pub fn run_system(
        test: &Dataset,
        small: &(dyn Detector + Sync),
        big: &(dyn Detector + Sync),
        discriminator: &DifficultCaseDiscriminator,
        mode: RuntimeMode,
        config: &RuntimeConfig,
    ) -> Report {
        assert!(!test.is_empty(), "cannot run over an empty dataset");
        let num_classes = test.taxonomy().len();

        let (req_tx, req_rx) = channel::unbounded::<bytes::Bytes>();
        let (resp_tx, resp_rx) = channel::unbounded::<bytes::Bytes>();

        let served = Arc::new(Mutex::new(0usize));
        let served_cloud = Arc::clone(&served);

        let cloud_cfg = (config.cloud.clone(), config.link.clone(), config.seed);
        let report = thread::scope(|scope| {
            // ---- Cloud server thread ----
            scope.spawn(move || {
                let (device, link, seed) = cloud_cfg;
                let mut rng = StdRng::seed_from_u64(seed ^ 0xc10d);
                let mut server_free_at = 0.0f64;
                while let Ok(frame) = req_rx.recv() {
                    let req: UploadRequest =
                        decode_frame(&frame).expect("edge sends well-formed frames");
                    let uplink_s = link.transfer_time(req.frame_bytes, &mut rng);
                    let arrival = req.sent_at + uplink_s;
                    let start = server_free_at.max(arrival);
                    let infer_s = device.inference_time(big.flops());
                    server_free_at = start + infer_s;
                    let dets = big.detect(&req.scene);
                    *served_cloud.lock().unwrap() += 1;
                    let resp = UploadResponse {
                        dets,
                        sent_at: server_free_at,
                        infer_s,
                        uplink_s,
                    };
                    if resp_tx.send(encode_frame(&resp)).is_err() {
                        break; // edge hung up
                    }
                }
            });

            // ---- Edge device (this thread) ----
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xed6e);
            let mut now = 0.0f64;
            let mut map = MapEvaluator::new(num_classes, config.ap_protocol);
            let mut counter = DatasetCounter::new();
            let mut latency = LatencyStats::new();
            let mut uplink_bytes = 0u64;
            let mut deadline_misses = 0usize;
            let mut uploads = 0usize;

            for scene in test.iter() {
                let gts = scene.ground_truths();
                let mut breakdown = LatencyBreakdown::default();

                let (final_dets, decision) = match mode {
                    RuntimeMode::EdgeOnly => {
                        breakdown.edge_infer_s = config.edge.inference_time(small.flops());
                        (small.detect(scene), CaseKind::Easy)
                    }
                    RuntimeMode::CloudOnly => (small.detect(scene), CaseKind::Difficult),
                    RuntimeMode::SmallBig => {
                        breakdown.edge_infer_s = config.edge.inference_time(small.flops());
                        breakdown.discriminator_s = config.discriminator_s;
                        let dets = small.detect(scene);
                        let kind = discriminator.classify(&dets);
                        (dets, kind)
                    }
                };

                now += breakdown.edge_infer_s + breakdown.discriminator_s;

                let final_dets = if decision.is_difficult() {
                    let image_entered_at = now - breakdown.edge_infer_s - breakdown.discriminator_s;
                    let frame =
                        render(&scene.render_spec(config.frame_size.0, config.frame_size.1));
                    let frame_bytes = encoded_size_bytes(&frame);
                    uplink_bytes += frame_bytes as u64;
                    uploads += 1;
                    let req = UploadRequest {
                        scene: scene.clone(),
                        frame_bytes,
                        sent_at: now,
                    };
                    req_tx.send(encode_frame(&req)).expect("cloud thread alive");
                    let resp: UploadResponse =
                        decode_frame(&resp_rx.recv().expect("cloud thread replies"))
                            .expect("cloud sends well-formed frames");
                    let downlink_s = config
                        .link
                        .transfer_time(result_size_bytes(resp.dets.len()), &mut rng);
                    let answer_at = resp.sent_at + downlink_s;
                    let missed_deadline = config
                        .deadline_s
                        .map(|d| answer_at - image_entered_at > d)
                        .unwrap_or(false);
                    if missed_deadline {
                        deadline_misses += 1;
                        let deadline = config.deadline_s.expect("checked above");
                        let waited = (image_entered_at + deadline - now).max(0.0);
                        breakdown.uplink_s = waited;
                        now += waited;
                        final_dets
                    } else {
                        breakdown.uplink_s = resp.uplink_s;
                        breakdown.cloud_infer_s = resp.infer_s
                            + (resp.sent_at - now - resp.uplink_s - resp.infer_s).max(0.0);
                        breakdown.downlink_s = downlink_s;
                        now = answer_at;
                        resp.dets
                    }
                } else {
                    final_dets
                };

                latency.add(breakdown);
                map.add_image(&final_dets, &gts);
                counter.add(count_detected(&final_dets, &gts, &config.counting));
            }
            drop(req_tx); // shut the cloud thread down

            Report {
                map_pct: map.evaluate().map_percent(),
                detected: counter.total_detected(),
                total_gt: counter.total_gt(),
                total_time_s: now,
                upload_ratio: uploads as f64 / test.len() as f64,
                latency,
                uplink_bytes,
                deadline_misses,
            }
        });

        assert!(
            *served.lock().unwrap() == (report.upload_ratio * test.len() as f64).round() as usize,
            "server must have processed every uploaded image"
        );
        report
    }
}

fn fixture() -> (Dataset, SimDetector, SimDetector) {
    let test = Dataset::generate("equiv", &DatasetProfile::helmet(), 40, 9);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    (test, small, big)
}

fn disc() -> DifficultCaseDiscriminator {
    DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.21,
        count: 4,
        area: 0.03,
    })
}

/// The session-layer `run_system` must reproduce the seed implementation's
/// report bit-for-bit — same latencies, mAP, upload ratio — in every mode,
/// with and without a deadline. This compares against the transcribed
/// pre-redesign code in [`legacy`], so it is not circular.
#[test]
fn run_system_matches_seed_implementation_exactly() {
    let (test, small, big) = fixture();
    let configs = [
        RuntimeConfig {
            frame_size: (96, 96),
            ..Default::default()
        },
        RuntimeConfig {
            frame_size: (96, 96),
            deadline_s: Some(0.15),
            ..Default::default()
        },
        RuntimeConfig {
            frame_size: (96, 96),
            link: LinkModel::cellular(),
            seed: 0xbeef,
            ..Default::default()
        },
    ];
    for config in &configs {
        for mode in [
            RuntimeMode::SmallBig,
            RuntimeMode::EdgeOnly,
            RuntimeMode::CloudOnly,
        ] {
            let new = run_system(&test, &small, &big, &disc(), mode, config);
            let old = legacy::run_system(&test, &small, &big, &disc(), mode, config);
            assert_eq!(new.map_pct, old.map_pct, "{mode:?} map");
            assert_eq!(new.detected, old.detected, "{mode:?} detected");
            assert_eq!(new.total_gt, old.total_gt, "{mode:?} gt");
            assert_eq!(new.total_time_s, old.total_time_s, "{mode:?} time");
            assert_eq!(new.upload_ratio, old.upload_ratio, "{mode:?} upload");
            assert_eq!(new.latency, old.latency, "{mode:?} latency");
            assert_eq!(new.uplink_bytes, old.uplink_bytes, "{mode:?} bytes");
            assert_eq!(new.deadline_misses, old.deadline_misses, "{mode:?} misses");
        }
    }
}

/// `run_system` is documented as a thin wrapper over one blocking
/// single-session `CloudServer`. Drive that session by hand and require the
/// identical report — field for field, bit for bit.
#[test]
fn run_system_equals_manual_single_session() {
    let (test, small, big) = fixture();
    let config = RuntimeConfig {
        frame_size: (96, 96),
        ..Default::default()
    };

    let legacy = run_system(&test, &small, &big, &disc(), RuntimeMode::SmallBig, &config);

    let big_arc: Arc<dyn Detector + Send + Sync> = Arc::new(big.clone());
    let mut cloud = CloudServer::spawn(
        CloudConfig {
            device: config.cloud.clone(),
            seed: config.seed,
            max_batch: 1,
            workers: 1,
            ..CloudConfig::default()
        },
        big_arc,
    );
    let session_cfg = SessionConfig {
        edge: config.edge.clone(),
        link: config.link.clone(),
        frame_size: config.frame_size,
        discriminator_s: config.discriminator_s,
        seed: config.seed,
        ap_protocol: config.ap_protocol,
        counting: config.counting,
        deadline_s: config.deadline_s,
        ..SessionConfig::new(test.taxonomy().len())
    };
    let mut session = cloud.connect(session_cfg, &small, Box::new(disc()));
    for scene in test.iter() {
        let ticket = session.submit(scene);
        let _ = session.poll(ticket);
    }
    let manual = session.drain();
    drop(session);
    let stats = cloud.shutdown();

    assert_eq!(stats.served, manual.uploads);
    assert_eq!(legacy.map_pct, manual.map_pct);
    assert_eq!(legacy.detected, manual.detected);
    assert_eq!(legacy.total_gt, manual.total_gt);
    assert_eq!(legacy.total_time_s, manual.total_time_s);
    assert_eq!(legacy.upload_ratio, manual.upload_ratio);
    assert_eq!(legacy.latency, manual.latency);
    assert_eq!(legacy.uplink_bytes, manual.uplink_bytes);
    assert_eq!(legacy.deadline_misses, manual.deadline_misses);
}

/// All three legacy modes run bit-identically twice through the wrapper.
#[test]
fn wrapper_is_deterministic_in_every_mode() {
    let (test, small, big) = fixture();
    let config = RuntimeConfig {
        frame_size: (96, 96),
        ..Default::default()
    };
    for mode in [
        RuntimeMode::SmallBig,
        RuntimeMode::EdgeOnly,
        RuntimeMode::CloudOnly,
    ] {
        let a = run_system(&test, &small, &big, &disc(), mode, &config);
        let b = run_system(&test, &small, &big, &disc(), mode, &config);
        assert_eq!(a, b, "{mode:?}");
    }
}

/// The acceptance scenario: four concurrent edge sessions with distinct
/// link models and policies against one cloud, driven round-robin with
/// skewed workloads, twice — identical reports both times.
#[test]
fn four_edge_run_is_deterministic() {
    let run = || {
        let (test, small, big) = fixture();
        let big_arc: Arc<dyn Detector + Send + Sync> = Arc::new(big);
        let mut cloud = CloudServer::spawn(
            CloudConfig {
                max_batch: 3,
                ..CloudConfig::default()
            },
            big_arc,
        );
        let base = SessionConfig {
            frame_size: (96, 96),
            ..SessionConfig::new(2)
        };
        let mut sessions = vec![
            cloud.connect(
                SessionConfig {
                    link: LinkModel::wlan(),
                    seed: 1,
                    ..base.clone()
                },
                &small,
                Box::new(disc()),
            ),
            cloud.connect(
                SessionConfig {
                    link: LinkModel::fast_wifi(),
                    seed: 2,
                    ..base.clone()
                },
                &small,
                Box::new(Policy::CloudOnly),
            ),
            cloud.connect(
                SessionConfig {
                    link: LinkModel::cellular(),
                    seed: 3,
                    ..base.clone()
                },
                &small,
                Box::new(Policy::Random {
                    upload_fraction: 0.5,
                    seed: 9,
                }),
            ),
            cloud.connect(
                SessionConfig {
                    link: LinkModel::wlan(),
                    seed: 4,
                    ..base.clone()
                },
                &small,
                Policy::Top1Quantile {
                    upload_fraction: 0.4,
                }
                .into_stream(),
            ),
        ];
        // Skewed workloads: session i sees every (i+1)-th frame.
        for (i, scene) in test.iter().enumerate() {
            for (k, session) in sessions.iter_mut().enumerate() {
                if i % (k + 1) == 0 {
                    session.submit(scene);
                }
            }
        }
        let reports: Vec<SessionReport> = sessions.iter_mut().map(|s| s.drain()).collect();
        drop(sessions);
        let stats = cloud.shutdown();
        (reports, stats)
    };
    let (ra, sa) = run();
    let (rb, sb) = run();
    assert_eq!(ra, rb);
    assert_eq!(sa, sb);
    assert_eq!(ra.len(), 4);
    assert_eq!(sa.sessions, 4);
    // Session 1 is cloud-only over its 20-frame share (every 2nd frame).
    assert_eq!(ra[1].frames, 20);
    assert_eq!(ra[1].uploads, 20);
    // The cloud served exactly the union of all uploads.
    assert_eq!(sa.served, ra.iter().map(|r| r.uploads).sum::<usize>());
    // Distinct links/policies actually produced distinct sessions.
    assert!(ra[0].total_time_s != ra[1].total_time_s);
}
