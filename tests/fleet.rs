//! Fleet conformance: the event-driven virtual-time core must be
//! bit-identical to the thread-per-session reference deployment, and the
//! population layer must be reproducible from its seed.
//!
//! These are the pins behind the PR 8 refactor: `EdgeSession` /
//! `CloudServer` became facades over channel-free state machines, and the
//! fleet engine drives those same machines inline. If either runtime
//! drifts — an RNG draw moved, a message reordered, a clock advanced
//! differently — the heterogeneous fleet here diverges immediately.
//!
//! PR 9 adds two more pins on top: the shard-parallel drive must be
//! bit-identical for threads ∈ {1, 2, 4}, and the compact frame-metrics
//! accumulator must be bit-identical to the full per-session evaluators.

use smallbig::core::fleet::{
    run_fleet, run_fleet_reference, run_fleet_sessions, run_fleet_with, ArrivalCurve,
    DeadlineChoice, FleetPolicy, FleetSpec, LinkChoice, MetricsMode, PolicyChoice, Population,
};
use smallbig::core::CloudConfig;
use smallbig::datagen::{DatasetProfile, DriftSchedule};
use smallbig::prelude::{LinkModel, LinkTrace};

/// A small but maximally heterogeneous fleet: static and traced links,
/// all three policy archetypes, mixed deadlines, admission control, and
/// two cloud shards.
fn heterogeneous_spec() -> FleetSpec {
    FleetSpec {
        tenants: 5,
        frames_per_session: 4,
        frame_interval_s: 5.0,
        horizon_s: 30.0,
        arrival: ArrivalCurve::Diurnal {
            period_s: 15.0,
            floor_scale: 0.3,
        },
        link_mix: vec![
            LinkChoice {
                weight: 0.4,
                link: LinkModel::wlan(),
                trace: None,
            },
            LinkChoice {
                weight: 0.3,
                link: LinkModel::fast_wifi(),
                trace: None,
            },
            LinkChoice {
                weight: 0.3,
                link: LinkModel::cellular(),
                trace: Some(LinkTrace::diurnal_ramp(20.0, 0.35, 8, 3)),
            },
        ],
        policy_mix: vec![
            PolicyChoice {
                weight: 0.6,
                policy: FleetPolicy::Discriminator,
            },
            PolicyChoice {
                weight: 0.25,
                policy: FleetPolicy::CloudOnly,
            },
            PolicyChoice {
                weight: 0.15,
                policy: FleetPolicy::EdgeOnly,
            },
        ],
        deadline_mix: vec![
            DeadlineChoice {
                weight: 0.5,
                deadline_s: None,
            },
            DeadlineChoice {
                weight: 0.5,
                deadline_s: Some(0.4),
            },
        ],
        scene_pool: 12,
        shards: 2,
        cloud: CloudConfig {
            max_batch: 1,
            queue_limit: Some(64),
            ..CloudConfig::default()
        },
        seed: 0x000f_1ee7_2023,
        ..FleetSpec::new(120)
    }
}

#[test]
fn event_core_is_bit_identical_to_threaded_reference() {
    let spec = heterogeneous_spec();
    let (core_reports, core_stats) = run_fleet_sessions(&spec).expect("healthy drive");
    let (ref_reports, ref_stats) = run_fleet_reference(&spec);
    assert_eq!(
        core_reports, ref_reports,
        "per-session reports must match the thread-per-session deployment bit for bit"
    );
    assert_eq!(
        core_stats, ref_stats,
        "per-shard cloud stats must match the thread-per-session deployment"
    );
    // The fleet actually exercised the interesting paths.
    assert_eq!(core_reports.len(), spec.sessions);
    assert!(core_reports.iter().any(|r| r.uploads > 0), "some uploads");
    assert!(
        core_reports.iter().any(|r| r.uploads == 0),
        "some edge-only sessions"
    );
    assert!(
        core_reports.iter().any(|r| r.deadline_misses > 0)
            || core_reports.iter().any(|r| r.link_fallbacks > 0),
        "deadlines or traced links should bite somewhere"
    );
}

#[test]
fn fleet_replays_are_deterministic() {
    let spec = heterogeneous_spec();
    let a = run_fleet(&spec).expect("healthy drive");
    let b = run_fleet(&spec).expect("healthy drive");
    assert_eq!(a, b, "same spec, same process: bit-identical reports");
    assert_eq!(a.frames, (spec.sessions * 4) as u64);
    assert_eq!(a.cloud.len(), spec.shards);
    assert_eq!(
        a.cloud.iter().map(|c| c.sessions).sum::<usize>(),
        spec.sessions
    );
}

#[test]
fn seeded_population_is_reproducible_and_seed_sensitive() {
    let spec = heterogeneous_spec();
    let a = Population::generate(&spec);
    let b = Population::generate(&spec);
    assert_eq!(a, b, "same seed, same population");
    let reseeded = FleetSpec {
        seed: spec.seed ^ 1,
        ..heterogeneous_spec()
    };
    assert_ne!(
        a,
        Population::generate(&reseeded),
        "a different seed must plan a different population"
    );
    // Every mix entry is actually used by this population.
    assert!((0..3).all(|l| a.sessions.iter().any(|p| p.link == l)));
    assert!((0..3).all(|k| a.sessions.iter().any(|p| p.policy == k)));
    assert!((0..2).all(|d| a.sessions.iter().any(|p| p.deadline == d)));
}

#[test]
fn fleet_report_quantiles_and_miss_curve_are_coherent() {
    let report = run_fleet(&heterogeneous_spec()).expect("healthy drive");
    let q = &report.latency;
    assert!(q.p50_s > 0.0);
    assert!(q.p50_s <= q.p90_s && q.p90_s <= q.p99_s);
    assert!(q.p99_s <= q.p999_s && q.p999_s <= q.max_s);
    assert!(q.mean_s > 0.0 && q.mean_s <= q.max_s);
    for pair in report.miss_curve.windows(2) {
        assert!(pair[0].deadline_s < pair[1].deadline_s);
        assert!(
            pair[0].miss_fraction >= pair[1].miss_fraction,
            "a longer deadline cannot be missed more often"
        );
    }
    assert_eq!(
        report.tenants.iter().map(|t| t.frames).sum::<u64>(),
        report.frames,
        "tenant breakdowns partition the fleet's frames"
    );
    assert_eq!(
        report.tenants.iter().map(|t| t.sessions).sum::<usize>(),
        report.sessions
    );
    for t in &report.tenants {
        assert!(t.latency.p50_s <= t.latency.p999_s);
    }
}

#[test]
fn uniform_arrivals_and_single_shard_also_conform() {
    // The degenerate corners of the planner: one shard, uniform arrivals,
    // no admission control.
    let spec = FleetSpec {
        arrival: ArrivalCurve::Uniform,
        shards: 1,
        cloud: CloudConfig::default(),
        ..heterogeneous_spec()
    };
    let (core_reports, core_stats) = run_fleet_sessions(&spec).expect("healthy drive");
    let (ref_reports, ref_stats) = run_fleet_reference(&spec);
    assert_eq!(core_reports, ref_reports);
    assert_eq!(core_stats, ref_stats);
}

#[test]
fn parallel_drive_is_bit_identical_for_threads_1_2_4() {
    // The PR 9 pin: the one-worker-per-shard-group parallel drive must
    // produce the same bytes as the sequential drive AND the
    // thread-per-session reference deployment, for every thread count.
    // Shard groups share no mutable state (disjoint RNG streams, disjoint
    // session sets, a pure-function upload-size memo), so the thread knob
    // may change wall-clock time only.
    let base = heterogeneous_spec();
    let (ref_reports, ref_stats) = run_fleet_reference(&base);
    let one = FleetSpec {
        threads: 1,
        ..base.clone()
    };
    let seq_report = run_fleet(&one).expect("healthy drive");
    for threads in [1, 2, 4] {
        let spec = FleetSpec {
            threads,
            ..base.clone()
        };
        let (reports, stats) = run_fleet_sessions(&spec).expect("healthy drive");
        assert_eq!(
            reports, ref_reports,
            "per-session reports diverged on {threads} thread(s)"
        );
        assert_eq!(
            stats, ref_stats,
            "per-shard cloud stats diverged on {threads} thread(s)"
        );
        let report = run_fleet(&spec).expect("healthy drive");
        assert_eq!(
            report, seq_report,
            "aggregate FleetReport diverged on {threads} thread(s)"
        );
    }
}

#[test]
fn drifting_population_is_bit_identical_to_threaded_reference() {
    // The PR 10 pin: a mid-run day/night profile swap must hit both
    // runtimes identically — which phase pool a frame samples from is a
    // pure function of the frame's virtual timestamp, shared by the event
    // core and the thread-per-session reference. Sessions whose lifetimes
    // straddle the swap see day scenes first and night scenes after.
    let spec = FleetSpec {
        drift: Some(DriftSchedule::day_night(DatasetProfile::helmet(), 15.0)),
        ..heterogeneous_spec()
    };
    let (core_reports, core_stats) = run_fleet_sessions(&spec).expect("healthy drive");
    let (ref_reports, ref_stats) = run_fleet_reference(&spec);
    assert_eq!(
        core_reports, ref_reports,
        "drifting per-session reports must match the reference bit for bit"
    );
    assert_eq!(core_stats, ref_stats);
    // The swap really changed the workload: the same fleet without drift
    // produces different reports.
    let (static_reports, _) = run_fleet_sessions(&heterogeneous_spec()).expect("healthy drive");
    assert_ne!(
        core_reports, static_reports,
        "the night phase must actually alter the fleet's traffic"
    );
}

#[test]
fn compact_metrics_match_full_metrics_bit_for_bit() {
    // FleetReport never reads per-session mAP, so the compact accumulator
    // (no MapEvaluator, shared per-shard frame scratch) must change memory
    // only — never a byte of the report. `run_fleet` defaults to Compact;
    // pin it against an explicit Full run.
    let spec = heterogeneous_spec();
    let full = run_fleet_with(&spec, MetricsMode::Full).expect("healthy drive");
    let compact = run_fleet_with(&spec, MetricsMode::Compact).expect("healthy drive");
    assert_eq!(full, compact, "metrics mode must not change the report");
    assert_eq!(run_fleet(&spec).expect("healthy drive"), compact);
    assert!(full.frames > 0 && full.tenants.iter().any(|t| t.total_gt > 0));
}
